(* Seeded random generation of well-typed Jir programs.

   The generator is deliberately conservative about runtime behavior —
   no division or modulo, array indices are literals inside the fixed
   array length, loops are counter-bounded, intra-class calls only go to
   lower-numbered methods and cross-class calls only to earlier classes
   (so the call graph is acyclic and every method terminates) — while
   still covering the whole substrate surface the oracles exercise:
   fields, arrays, locals, conditionals, loops, [synchronized] methods
   and blocks, constructors, cross-object aliasing through a peer
   reference, spawn/join and [Sys.print]. *)

open Jir.Ast

module Rng = struct
  type t = { mutable s : int64 }

  let make seed = { s = seed }

  (* splitmix64 *)
  let next64 t =
    t.s <- Int64.add t.s 0x9e3779b97f4a7c15L;
    let z = t.s in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int bound))

  let range t lo hi = lo + int t (hi - lo + 1)
  let bool t = int t 2 = 0
  let chance t num den = int t den < num
  let pick t l = List.nth l (int t (List.length l))
end

let seed_cls = "Main"
let seed_meth = "seed"
let main_meth = "main"
let array_len = 4

(* Static description of a generated library class, threaded through
   generation so later classes and the harness can reference it. *)
type minfo = { mi_name : string; mi_ret_int : bool; mi_nparams : int }

type cls_info = {
  ci_name : string;
  ci_int_fields : string list;
  ci_has_array : bool;  (* int[] field "a" of length [array_len] *)
  ci_peer : cls_info option;  (* reference field "p" to an earlier class *)
  ci_methods : minfo list;
}

let e d = mk_expr d
let s d = mk_stmt d
let lit n = e (Eint n)
let this = e Ethis

(* ---- expressions ---- *)

type bctx = {
  bc_rng : Rng.t;
  bc_ci : cls_info option;  (* enclosing library class; None in Main *)
  bc_callable : minfo list;  (* same-class methods safe to call *)
  mutable bc_locals : (string * bool) list;  (* int locals; snd = assignable *)
  mutable bc_fresh : int;
}

let fresh c prefix =
  let n = c.bc_fresh in
  c.bc_fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let rec int_expr c depth =
  let r = c.bc_rng in
  let leaves =
    (fun () -> lit (Rng.int r 10))
    :: List.concat
         [
           (match c.bc_locals with
           | [] -> []
           | ls -> [ (fun () -> e (Evar (fst (Rng.pick r ls)))) ]);
           (match c.bc_ci with
           | Some ci ->
             (fun () -> e (Efield (this, Rng.pick r ci.ci_int_fields)))
             :: List.concat
                  [
                    (if ci.ci_has_array then
                       [
                         (fun () ->
                           e
                             (Eindex
                                (e (Efield (this, "a")), lit (Rng.int r array_len))));
                       ]
                     else []);
                    (match ci.ci_peer with
                    | Some peer ->
                      [
                        (fun () ->
                          e
                            (Efield
                               (e (Efield (this, "p")), Rng.pick r peer.ci_int_fields)));
                      ]
                    | None -> []);
                  ]
           | None -> []);
         ]
  in
  if depth <= 0 then (Rng.pick r leaves) ()
  else
    match Rng.int r 4 with
    | 0 | 1 -> (Rng.pick r leaves) ()
    | 2 ->
      let op = Rng.pick r [ Add; Sub; Mul ] in
      e (Ebinop (op, int_expr c (depth - 1), int_expr c (depth - 1)))
    | _ -> e (Eunop (Neg, int_expr c (depth - 1)))

let bool_expr c =
  let r = c.bc_rng in
  if Rng.chance r 1 5 then e (Ebool (Rng.bool r))
  else
    let op = Rng.pick r [ Lt; Le; Gt; Ge; Eq; Ne ] in
    e (Ebinop (op, int_expr c 1, int_expr c 1))

let call_args c (mi : minfo) = List.init mi.mi_nparams (fun _ -> int_expr c 1)

(* A method call as one or two statements: int results land in a fresh
   local so they stay visible to later expressions. *)
let call_stmts c recv (mi : minfo) =
  let call = Ecall (recv, mi.mi_name, call_args c mi) in
  if mi.mi_ret_int then begin
    let v = fresh c "r" in
    let st = s (Sdecl (Tint, v, Some (e call))) in
    c.bc_locals <- (v, true) :: c.bc_locals;
    [ st ]
  end
  else [ s (Sexpr (e call)) ]

(* ---- statements (library method bodies) ---- *)

let rec stmts c depth : stmt list =
  let r = c.bc_rng in
  let ci =
    match c.bc_ci with
    | Some ci -> ci
    | None ->
      (* only the harness context lacks class info, and it never
         generates library bodies *)
      invalid_arg "Gen.stmts: no enclosing class info"
  in
  let assignable = List.filter snd c.bc_locals in
  let choices =
    List.concat
      [
        [
          (fun () ->
            [ s (Sassign (Lfield (this, Rng.pick r ci.ci_int_fields), int_expr c 2)) ]);
          (fun () ->
            let v = fresh c "v" in
            let st = s (Sdecl (Tint, v, Some (int_expr c 2))) in
            c.bc_locals <- (v, true) :: c.bc_locals;
            [ st ]);
        ];
        (if ci.ci_has_array then
           [
             (fun () ->
               [
                 s
                   (Sassign
                      ( Lindex (e (Efield (this, "a")), lit (Rng.int r array_len)),
                        int_expr c 2 ));
               ]);
           ]
         else []);
        (match ci.ci_peer with
        | Some peer ->
          [
            (fun () ->
              [
                s
                  (Sassign
                     ( Lfield (e (Efield (this, "p")), Rng.pick r peer.ci_int_fields),
                       int_expr c 2 ));
              ]);
            (fun () ->
              call_stmts c (e (Efield (this, "p"))) (Rng.pick r peer.ci_methods));
          ]
        | None -> []);
        (match assignable with
        | [] -> []
        | ls ->
          [ (fun () -> [ s (Sassign (Lvar (fst (Rng.pick r ls)), int_expr c 2)) ]) ]);
        (match c.bc_callable with
        | [] -> []
        | ms -> [ (fun () -> call_stmts c this (Rng.pick r ms)) ]);
        (if depth > 0 then
           [
             (fun () ->
               let cond = bool_expr c in
               let th = block c (depth - 1) in
               let el = if Rng.bool r then block c (depth - 1) else [] in
               [ s (Sif (cond, th, el)) ]);
             (fun () ->
               let target =
                 if ci.ci_peer <> None && Rng.chance r 1 3 then e (Efield (this, "p"))
                 else this
               in
               [ s (Ssync (target, block c (depth - 1))) ]);
             (fun () ->
               (* bounded counter loop; the counter is never assignable *)
               let w = fresh c "w" in
               let decl = s (Sdecl (Tint, w, Some (lit 0))) in
               c.bc_locals <- (w, false) :: c.bc_locals;
               let bound = Rng.range r 2 3 in
               let body =
                 block c (depth - 1)
                 @ [ s (Sassign (Lvar w, e (Ebinop (Add, e (Evar w), lit 1)))) ]
               in
               [ decl; s (Swhile (e (Ebinop (Lt, e (Evar w), lit bound)), body)) ]);
           ]
         else []);
      ]
  in
  (Rng.pick r choices) ()

and block c depth : block =
  let saved = c.bc_locals in
  let n = Rng.range c.bc_rng 1 3 in
  let b = List.concat (List.init n (fun _ -> stmts c depth)) in
  c.bc_locals <- saved;
  b

(* ---- library classes ---- *)

let gen_method r ~(ci : cls_info) ~callable i : method_decl * minfo =
  let ret_int = Rng.chance r 1 4 in
  let nparams = Rng.int r 3 in
  let sync = Rng.chance r 1 3 in
  let params = List.init nparams (fun k -> (Tint, Printf.sprintf "x%d" k)) in
  let c =
    {
      bc_rng = r;
      bc_ci = Some ci;
      bc_callable = callable;
      bc_locals = List.map (fun (_, x) -> (x, false)) params;
      bc_fresh = 0;
    }
  in
  let body = block c 2 in
  let body = if ret_int then body @ [ s (Sreturn (Some (int_expr c 1))) ] else body in
  let name = Printf.sprintf "m%d" i in
  ( {
      m_name = name;
      m_static = false;
      m_sync = sync;
      m_abstract = false;
      m_ret = (if ret_int then Tint else Tvoid);
      m_params = params;
      m_body = body;
      m_pos = dummy_pos;
    },
    { mi_name = name; mi_ret_int = ret_int; mi_nparams = nparams } )

let gen_class r ~(peers : cls_info list) k : class_decl * cls_info =
  let name = String.make 1 (Char.chr (Char.code 'A' + k)) in
  let n_fields = Rng.range r 2 3 in
  let int_fields = List.init n_fields (fun i -> Printf.sprintf "f%d" i) in
  let has_array = Rng.bool r in
  let peer = if peers <> [] && Rng.bool r then Some (Rng.pick r peers) else None in
  let ci_base =
    { ci_name = name; ci_int_fields = int_fields; ci_has_array = has_array;
      ci_peer = peer; ci_methods = [] }
  in
  let n_methods = Rng.range r 2 4 in
  let methods, minfos =
    List.fold_left
      (fun (ms, mis) i ->
        let m, mi = gen_method r ~ci:ci_base ~callable:mis i in
        (ms @ [ m ], mis @ [ mi ]))
      ([], []) (List.init n_methods Fun.id)
  in
  let fields =
    List.map
      (fun f ->
        { f_name = f; f_static = false; f_ty = Tint; f_init = None; f_pos = dummy_pos })
      int_fields
    @ (if has_array then
         [ { f_name = "a"; f_static = false; f_ty = Tarray Tint; f_init = None;
             f_pos = dummy_pos } ]
       else [])
    @
    match peer with
    | Some p ->
      [ { f_name = "p"; f_static = false; f_ty = Tclass p.ci_name; f_init = None;
          f_pos = dummy_pos } ]
    | None -> []
  in
  let ctor_body =
    List.concat
      [
        List.filteri (fun i _ -> i < 2)
          (List.map
             (fun f -> s (Sassign (Lfield (this, f), lit (Rng.int r 10))))
             int_fields);
        (if has_array then
           [ s (Sassign (Lfield (this, "a"), e (Enew_array (Tint, lit array_len)))) ]
         else []);
        (match peer with
        | Some p -> [ s (Sassign (Lfield (this, "p"), e (Enew (p.ci_name, [])))) ]
        | None -> []);
      ]
  in
  let ctor =
    {
      m_name = ctor_name;
      m_static = false;
      m_sync = false;
      m_abstract = false;
      m_ret = Tvoid;
      m_params = [];
      m_body = ctor_body;
      m_pos = dummy_pos;
    }
  in
  ( {
      c_name = name;
      c_kind = Kclass;
      c_super = None;
      c_impls = [];
      c_fields = fields;
      c_methods = ctor :: methods;
      c_pos = dummy_pos;
    },
    { ci_base with ci_methods = minfos } )

(* ---- the Main harness ---- *)

(* Shared context for harness bodies: objects are locals o0/s0..; calls
   go through the same [call_stmts] machinery as library bodies. *)
let harness_ctx r = { bc_rng = r; bc_ci = None; bc_callable = []; bc_locals = []; bc_fresh = 0 }

let construct_objs r ~prefix (infos : cls_info list) n =
  List.init n (fun i ->
      let ci = Rng.pick r infos in
      let v = Printf.sprintf "%s%d" prefix i in
      ((v, ci), s (Sdecl (Tclass ci.ci_name, v, Some (e (Enew (ci.ci_name, [])))))))
  |> List.split

let rand_call r c ((v, ci) : string * cls_info) =
  call_stmts c (e (Evar v)) (Rng.pick r ci.ci_methods)

(* The sequential seed test: construct, exercise, print. *)
let gen_seed_method r (infos : cls_info list) : method_decl =
  let c = harness_ctx r in
  let objs, decls = construct_objs r ~prefix:"o" infos (Rng.range r 1 2) in
  let n_calls = Rng.range r 2 4 in
  let calls = List.concat (List.init n_calls (fun _ -> rand_call r c (Rng.pick r objs))) in
  let result =
    match c.bc_locals with
    | [] -> lit (Rng.int r 10)
    | ls -> e (Evar (fst (Rng.pick r ls)))
  in
  let print = s (Sexpr (e (Estatic_call ("Sys", "print", [ result ])))) in
  {
    m_name = seed_meth;
    m_static = true;
    m_sync = false;
    m_abstract = false;
    m_ret = Tvoid;
    m_params = [];
    m_body = decls @ calls @ [ print ];
    m_pos = dummy_pos;
  }

(* The multithreaded client: shared objects, spawned method calls on
   them, joins, and a post-join access — the shape the detector oracles
   feed on. *)
let gen_main_method r (infos : cls_info list) : method_decl =
  let c = harness_ctx r in
  let objs, decls = construct_objs r ~prefix:"s" infos (Rng.range r 1 2) in
  let warmup =
    List.concat (List.init (Rng.int r 2) (fun _ -> rand_call r c (Rng.pick r objs)))
  in
  let n_threads = Rng.range r 2 3 in
  let hot =
    match objs with
    | o :: _ -> o
    | [] -> invalid_arg "Gen.gen_main_method: no shared objects constructed"
  in
  let spawns =
    List.init n_threads (fun i ->
        (* bias threads onto the first object so they contend *)
        let v, ci = if Rng.chance r 3 4 then hot else Rng.pick r objs in
        let mi = Rng.pick r ci.ci_methods in
        s (Sspawn (Printf.sprintf "t%d" i, e (Evar v), mi.mi_name, call_args c mi)))
  in
  let joins =
    List.init n_threads (fun i -> s (Sjoin (e (Evar (Printf.sprintf "t%d" i)))))
  in
  let after = rand_call r c hot in
  let print = s (Sexpr (e (Estatic_call ("Sys", "print", [ lit (Rng.int r 10) ])))) in
  {
    m_name = main_meth;
    m_static = true;
    m_sync = false;
    m_abstract = false;
    m_ret = Tvoid;
    m_params = [];
    m_body = decls @ warmup @ spawns @ joins @ after @ [ print ];
    m_pos = dummy_pos;
  }

let generate ~seed : program =
  let r = Rng.make seed in
  let n_classes = Rng.range r 1 3 in
  let classes, infos =
    List.fold_left
      (fun (cs, infos) k ->
        let cd, ci = gen_class r ~peers:infos k in
        (cs @ [ cd ], infos @ [ ci ]))
      ([], []) (List.init n_classes Fun.id)
  in
  let main_cls =
    {
      c_name = seed_cls;
      c_kind = Kclass;
      c_super = None;
      c_impls = [];
      c_fields = [];
      c_methods = [ gen_seed_method r infos; gen_main_method r infos ];
      c_pos = dummy_pos;
    }
  in
  classes @ [ main_cls ]

let to_source = Jir.Pretty.program_to_string
