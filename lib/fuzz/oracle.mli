(** Differential oracles: invariants the whole stack depends on, checked
    end-to-end on one generated program.

    Each oracle either passes or fails with a human-readable detail
    string.  Oracles are pure functions of (program, seed): every VM or
    scheduler seed they use is derived from the given base seed with
    {!Par.seed}, so verdicts are reproducible and independent of how the
    campaign is parallelized. *)

type verdict = Pass | Fail of string

(** A fault injection for self-testing the harness.  [Drop_join] and
    [Drop_release] corrupt the event stream FastTrack observes (the
    other detectors and the naive oracle see the pristine trace);
    [Static_drop_sync] and [Static_stale_cache] plant an unsoundness
    inside the static race analyzer itself; [Repair_overlock] breaks
    the repair engine's cost-order search discipline.  A campaign run
    with a mutation must report disagreement — proving the differential
    oracle would catch a real bug of that class. *)
type mutation =
  | Drop_join  (** hide [Joined] events: lost join happens-before edges *)
  | Drop_release  (** hide [Unlock] events: lost release→acquire edges *)
  | Static_drop_sync
      (** drop sync-region accesses from static candidate generation *)
  | Static_stale_cache
      (** key summary-cache entries by class name instead of content
          digest, so edited classes reuse stale summaries *)
  | Repair_overlock
      (** make the repair engine try candidates in reverse cost order,
          so it accepts a needlessly coarse (non-minimal) repair *)

val mutation_of_string : string -> (mutation, string) result
val mutation_to_string : mutation -> string

val names : string list
(** Oracle names, in the order {!check} runs them. *)

val check :
  ?mutate:mutation -> seed:int64 -> Jir.Ast.program -> (string * verdict) list
(** Run every oracle on the program; one [(name, verdict)] pair per
    entry of {!names}, in order:

    - ["roundtrip"]: pretty → parse → pretty is the identity at
      whole-program scale;
    - ["typecheck"]: the printed program type-checks and compiles;
    - ["vm-determinism"]: two runs of [Main.main] under the same seeded
      random scheduler produce byte-identical traces, outputs, step
      counts and outcomes;
    - ["detectors-agree"]: FastTrack, Djit+ and a naive O(n²)
      full-history happens-before oracle flag exactly the same racy
      variables on the recorded multithreaded trace;
    - ["lockset-superset"]: lockset candidate pairs cover every
      happens-before race on the same trace;
    - ["static-superset"]: the static race analyzer's candidate set
      covers every FastTrack race of an un-mutated run, at the (field,
      unordered method pair) granularity — a machine-checked soundness
      bound for the analyzer;
    - ["synthesis-replay"]: the Narada pipeline runs on the sequential
      seed test, and every synthesized test instantiates and replays
      deterministically (two instantiations behave identically under
      the same directed-scheduler seed);
    - ["backend-diff"]: the compiled closure backend is observationally
      identical to the interpreter — same outcome, steps, crashes,
      output and final event-label count on an observer-free run, and
      an observer (trace recorder + FastTrack) attached halfway through
      sees a byte-identical event suffix and the same race keys under
      both backends;
    - ["static-incremental"]: re-analyzing the program through a
      summary cache warmed on a one-statement-edited variant yields a
      candidate list byte-identical to a from-scratch run, in both the
      closed and the open world — the invalidation soundness bound for
      the digest-keyed cache;
    - ["repair-closes"]: every race the detection pipeline confirms is
      closed by the repair engine — the synthesized patch eliminates
      the race under re-detection on both backends with no new
      lock-order pair — and the accepted patch is minimal: every
      cheaper grammar candidate was tried and rejected. *)

val first_failure :
  ?mutate:mutation -> seed:int64 -> Jir.Ast.program -> (string * string) option
(** [(oracle, detail)] of the first failing oracle, if any. *)

val fails_oracle :
  ?mutate:mutation -> seed:int64 -> oracle:string -> Jir.Ast.program -> bool
(** Does this specific oracle fail on the program?  The shrinker's
    predicate: candidates must keep failing the oracle that flagged the
    original program. *)

val coverage : seed:int64 -> Jir.Ast.program -> Cov.Set.t
(** Interleaving coverage of one seeded multithreaded execution of the
    program (same derived VM/scheduler seeds as the oracles): HB-edge
    and lock-order features from the recorded trace, racy-pair features
    from the lockset candidates.  Empty if the program does not
    compile.  The guided campaign's novelty signal. *)

val naive_hb_racy_vars : Runtime.Trace.t -> (int * string * int option) list
(** The naive oracle by itself: variables [(addr, field, idx)] with at
    least one pair of conflicting, vector-clock-unordered accesses,
    computed from full per-access clock history in O(n²).  Exposed for
    the unit tests. *)
