(* Interleaving-coverage metrics: hashed feature sets over executions,
   the feedback signal that turns blind schedule sampling into
   novelty-guided search.  See DESIGN §13. *)

type kind = Racy_pair | Hb_edge | Lock_order | Postponed

let kind_to_string = function
  | Racy_pair -> "racy_pair"
  | Hb_edge -> "hb_edge"
  | Lock_order -> "lock_order"
  | Postponed -> "postponed"

let kind_of_string = function
  | "racy_pair" -> Some Racy_pair
  | "hb_edge" -> Some Hb_edge
  | "lock_order" -> Some Lock_order
  | "postponed" -> Some Postponed
  | _ -> None

let all_kinds = [ Racy_pair; Hb_edge; Lock_order; Postponed ]

module Fp = struct
  type t = int64

  (* splitmix64 finalizer: cheap, well-mixed, and — unlike
     [Hashtbl.hash] — specified entirely by this file, so fingerprints
     are stable across OCaml releases and safe to persist in
     checkpoints. *)
  let mix (z : int64) : int64 =
    let z = Int64.add z 0x9e3779b97f4a7c15L in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xbf58476d1ce4e5b9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94d049bb133111ebL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let of_int i = mix (Int64.of_int i)
  let combine a b = mix (Int64.add (Int64.mul a 0x100000001b3L) b)

  let of_string s =
    (* FNV-1a over bytes, then mixed. *)
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s;
    mix !h
end

module I64set = Stdlib.Set.Make (Int64)

module Set = struct
  type t = {
    racy_pair : I64set.t;
    hb_edge : I64set.t;
    lock_order : I64set.t;
    postponed : I64set.t;
  }

  let empty =
    {
      racy_pair = I64set.empty;
      hb_edge = I64set.empty;
      lock_order = I64set.empty;
      postponed = I64set.empty;
    }

  let get k t =
    match k with
    | Racy_pair -> t.racy_pair
    | Hb_edge -> t.hb_edge
    | Lock_order -> t.lock_order
    | Postponed -> t.postponed

  let set k s t =
    match k with
    | Racy_pair -> { t with racy_pair = s }
    | Hb_edge -> { t with hb_edge = s }
    | Lock_order -> { t with lock_order = s }
    | Postponed -> { t with postponed = s }

  let is_empty t = List.for_all (fun k -> I64set.is_empty (get k t)) all_kinds
  let add k fp t = set k (I64set.add fp (get k t)) t
  let mem k fp t = I64set.mem fp (get k t)

  let union a b =
    {
      racy_pair = I64set.union a.racy_pair b.racy_pair;
      hb_edge = I64set.union a.hb_edge b.hb_edge;
      lock_order = I64set.union a.lock_order b.lock_order;
      postponed = I64set.union a.postponed b.postponed;
    }

  let count k t = I64set.cardinal (get k t)
  let total t = List.fold_left (fun n k -> n + count k t) 0 all_kinds

  let diff a b =
    {
      racy_pair = I64set.diff a.racy_pair b.racy_pair;
      hb_edge = I64set.diff a.hb_edge b.hb_edge;
      lock_order = I64set.diff a.lock_order b.lock_order;
      postponed = I64set.diff a.postponed b.postponed;
    }

  let novelty ~base t = total (diff t base)

  let equal a b =
    List.for_all (fun k -> I64set.equal (get k a) (get k b)) all_kinds

  let fold f t acc =
    List.fold_left
      (fun acc k -> I64set.fold (fun fp acc -> f k fp acc) (get k t) acc)
      acc all_kinds
end

(* Feature constructors.  Each domain gets a distinct tag so features
   never collide across kinds even if their payloads hash equal. *)

let tag = function
  | Racy_pair -> 0x52L
  | Hb_edge -> 0x48L
  | Lock_order -> 0x4cL
  | Postponed -> 0x50L

let site_fp (s : Runtime.Event.site) =
  Fp.combine (Fp.of_string s.Runtime.Event.s_meth) (Fp.of_int s.Runtime.Event.s_pc)

let racy_pair ~field a b =
  let fa = site_fp a and fb = site_fp b in
  (* Order-normalize so (a,b) and (b,a) fingerprint identically. *)
  let lo, hi = if Int64.compare fa fb <= 0 then (fa, fb) else (fb, fa) in
  Fp.combine
    (Fp.combine (tag Racy_pair) (Fp.of_string field))
    (Fp.combine lo hi)

type hb_kind = Spawn | Join | Rel_acq

let hb_kind_code = function Spawn -> 1 | Join -> 2 | Rel_acq -> 3

let hb_edge k ~src ~dst addr =
  Fp.combine
    (Fp.combine (tag Hb_edge) (Fp.of_int (hb_kind_code k)))
    (Fp.combine (Fp.of_int src) (Fp.combine (Fp.of_int dst) (Fp.of_int addr)))

let lock_order ~outer ~inner =
  Fp.combine (tag Lock_order) (Fp.combine (Fp.of_int outer) (Fp.of_int inner))

let postponed_state pairs =
  let pairs =
    List.sort_uniq
      (fun (t1, f1) (t2, f2) ->
        match Int.compare t1 t2 with 0 -> String.compare f1 f2 | c -> c)
      pairs
  in
  List.fold_left
    (fun h (tid, field) ->
      Fp.combine h (Fp.combine (Fp.of_int tid) (Fp.of_string field)))
    (tag Postponed) pairs

let of_trace (t : Runtime.Trace.t) =
  (* One left-to-right scan.  Per-thread lock stacks give nesting
     orders; the last unlocker of each lock address gives the
     release→acquire HB edge for the next acquirer. *)
  let held : (Runtime.Value.tid, Runtime.Value.addr list) Hashtbl.t =
    Hashtbl.create 8
  in
  let last_unlock : (Runtime.Value.addr, Runtime.Value.tid) Hashtbl.t =
    Hashtbl.create 8
  in
  let cov = ref Set.empty in
  let add k fp = cov := Set.add k fp !cov in
  Array.iter
    (fun (e : Runtime.Event.t) ->
      match e with
      | Runtime.Event.Lock { tid; addr; _ } ->
        let stack = Option.value ~default:[] (Hashtbl.find_opt held tid) in
        List.iter
          (fun outer -> add Lock_order (lock_order ~outer ~inner:addr))
          stack;
        Hashtbl.replace held tid (addr :: stack);
        (match Hashtbl.find_opt last_unlock addr with
        | Some src when src <> tid ->
          add Hb_edge (hb_edge Rel_acq ~src ~dst:tid addr)
        | Some _ | None -> ())
      | Runtime.Event.Unlock { tid; addr; _ } ->
        (match Hashtbl.find_opt held tid with
        | Some (a :: rest) when a = addr -> Hashtbl.replace held tid rest
        | Some stack ->
          Hashtbl.replace held tid (List.filter (fun a -> a <> addr) stack)
        | None -> ());
        Hashtbl.replace last_unlock addr tid
      | Runtime.Event.Spawned { tid; new_tid; _ } ->
        add Hb_edge (hb_edge Spawn ~src:tid ~dst:new_tid 0)
      | Runtime.Event.Joined { tid; joined; _ } ->
        add Hb_edge (hb_edge Join ~src:joined ~dst:tid 0)
      | Runtime.Event.Const _ | Runtime.Event.Move _ | Runtime.Event.Read _
      | Runtime.Event.Write _ | Runtime.Event.Alloc _ | Runtime.Event.Invoke _
      | Runtime.Event.Param _ | Runtime.Event.Return _ | Runtime.Event.Thrown _
        ->
        ())
    t;
  !cov

let record ?registry ~prefix set =
  let r =
    match registry with Some r -> r | None -> Obs.Metrics.global ()
  in
  List.iter
    (fun k ->
      Obs.Metrics.incr ~n:(Set.count k set) r (prefix ^ "/" ^ kind_to_string k))
    all_kinds;
  Obs.Metrics.incr ~n:(Set.total set) r (prefix ^ "/total")

module Corpus = struct
  type entry = {
    en_id : int;
    en_seed : int64;
    en_prefix : int list;
    en_gain : int;
  }

  type t = {
    mutable next_id : int;
    mutable rev_entries : entry list; (* newest first *)
    mutable cov : Set.t;
  }

  let create () = { next_id = 0; rev_entries = []; cov = Set.empty }
  let coverage c = c.cov
  let entries c = List.rev c.rev_entries
  let size c = List.length c.rev_entries

  let note c ~seed ~prefix cov =
    let gain = Set.novelty ~base:c.cov cov in
    if gain > 0 then begin
      let e =
        { en_id = c.next_id; en_seed = seed; en_prefix = prefix; en_gain = gain }
      in
      c.next_id <- c.next_id + 1;
      c.rev_entries <- e :: c.rev_entries;
      c.cov <- Set.union c.cov cov
    end;
    gain

  let ranked c =
    List.stable_sort
      (fun a b ->
        match Int.compare b.en_gain a.en_gain with
        | 0 -> Int.compare a.en_id b.en_id
        | cmp -> cmp)
      (entries c)

  let merge dst src =
    List.iter
      (fun e ->
        let e = { e with en_id = dst.next_id } in
        dst.next_id <- dst.next_id + 1;
        dst.rev_entries <- e :: dst.rev_entries)
      (entries src);
    dst.cov <- Set.union dst.cov src.cov

  (* Checkpoint format, schema narada.covcorpus/1:
       narada.covcorpus/1
       cov <kind> <fp-as-16-hex>          (sorted within kind)
       entry <id> seed=<dec> gain=<dec> prefix=<csv|-> *)

  let schema = "narada.covcorpus/1"

  let entry_line e =
    let csv l =
      if l = [] then "-" else String.concat "," (List.map string_of_int l)
    in
    Printf.sprintf "entry %d seed=%Ld gain=%d prefix=%s" e.en_id e.en_seed
      e.en_gain (csv e.en_prefix)

  let to_lines c =
    let buf = ref [] in
    let push l = buf := l :: !buf in
    push schema;
    Set.fold
      (fun k fp () -> push (Printf.sprintf "cov %s %016Lx" (kind_to_string k) fp))
      c.cov ();
    List.iter (fun e -> push (entry_line e)) (entries c);
    List.rev !buf

  let digest c =
    let fp =
      List.fold_left
        (fun h line -> Fp.combine h (Fp.of_string line))
        (Fp.of_string schema) (to_lines c)
    in
    Printf.sprintf "%016Lx" fp

  let save c path =
    (* write-then-rename so a reader (or a crashed writer) never sees a
       half-written corpus file *)
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          (to_lines c));
    Sys.rename tmp path

  let parse_csv s =
    if String.equal s "-" then Ok []
    else
      try Ok (List.map int_of_string (String.split_on_char ',' s))
      with Failure _ -> Error (Printf.sprintf "bad prefix %S" s)

  let parse_kv key s =
    let pre = key ^ "=" in
    let n = String.length pre in
    if String.length s >= n && String.equal (String.sub s 0 n) pre then
      Ok (String.sub s n (String.length s - n))
    else Error (Printf.sprintf "expected %s=..., got %S" key s)

  let load path =
    let ( let* ) = Result.bind in
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          List.rev !lines)
    with
    | exception Sys_error msg -> Error msg
    | [] -> Error "empty corpus file"
    | header :: rest ->
      if not (String.equal header schema) then
        Error (Printf.sprintf "bad schema line %S (want %S)" header schema)
      else begin
        let c = create () in
        let parse_line line =
          match String.split_on_char ' ' line with
          | [ "cov"; k; hex ] -> (
            match kind_of_string k with
            | None -> Error (Printf.sprintf "unknown kind %S" k)
            | Some kind -> (
              match Int64.of_string_opt ("0x" ^ hex) with
              | None -> Error (Printf.sprintf "bad fingerprint %S" hex)
              | Some fp ->
                c.cov <- Set.add kind fp c.cov;
                Ok ()))
          | [ "entry"; id; seed; gain; prefix ] ->
            let* id =
              match int_of_string_opt id with
              | Some i -> Ok i
              | None -> Error (Printf.sprintf "bad entry id %S" id)
            in
            let* seed_s = parse_kv "seed" seed in
            let* seed =
              match Int64.of_string_opt seed_s with
              | Some s -> Ok s
              | None -> Error (Printf.sprintf "bad seed %S" seed_s)
            in
            let* gain_s = parse_kv "gain" gain in
            let* gain =
              match int_of_string_opt gain_s with
              | Some g -> Ok g
              | None -> Error (Printf.sprintf "bad gain %S" gain_s)
            in
            let* prefix_s = parse_kv "prefix" prefix in
            let* prefix = parse_csv prefix_s in
            c.rev_entries <-
              { en_id = id; en_seed = seed; en_prefix = prefix; en_gain = gain }
              :: c.rev_entries;
            c.next_id <- max c.next_id (id + 1);
            Ok ()
          | _ -> Error (Printf.sprintf "unparseable line %S" line)
        in
        let rec go = function
          | [] -> Ok c
          | "" :: rest -> go rest
          | line :: rest -> (
            match parse_line line with Ok () -> go rest | Error _ as e -> e)
        in
        go rest
      end
end
