(** Interleaving-coverage metrics: the feedback signal for
    coverage-guided schedule exploration.

    Four feature domains, each a set of hashed features:

    - {b racy pairs} — candidate access pairs that were actually
      co-scheduled (both sides observed in one execution, or confirmed
      simultaneously postponed by Racefuzzer);
    - {b HB edges} — inter-thread happens-before edges exercised
      (spawn, join, and release→acquire on a lock);
    - {b lock orders} — nested lock acquisition orders (outer, inner)
      observed, the alphabet of potential deadlock cycles;
    - {b postponed states} — distinct Racefuzzer postponed-set states,
      the scheduler-state analogue of branch coverage.

    Feature sets form a commutative monoid under {!Set.union}, so
    per-domain coverage merges deterministically regardless of worker
    interleaving — the same contract as the [Obs.Metrics] registries. *)

type kind = Racy_pair | Hb_edge | Lock_order | Postponed

val kind_to_string : kind -> string
val all_kinds : kind list

(** Feature fingerprints: 64-bit hashes, stable across runs and OCaml
    versions (no [Hashtbl.hash] dependence). *)
module Fp : sig
  type t = int64

  val of_string : string -> t
  val combine : t -> t -> t
  val of_int : int -> t
end

(** A coverage set: four fingerprint sets, one per {!kind}. *)
module Set : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val add : kind -> Fp.t -> t -> t
  val mem : kind -> Fp.t -> t -> bool
  val union : t -> t -> t
  val count : kind -> t -> int
  val total : t -> int

  val novelty : base:t -> t -> int
  (** Number of features of [t] not already in [base]. *)

  val diff : t -> t -> t
  val equal : t -> t -> bool

  val fold : (kind -> Fp.t -> 'a -> 'a) -> t -> 'a -> 'a
  (** Iterates kinds in declaration order and fingerprints in ascending
      order — deterministic. *)
end

(** {2 Feature constructors} *)

val racy_pair : field:string -> Runtime.Event.site -> Runtime.Event.site -> Fp.t
(** Order-normalized: [racy_pair a b = racy_pair b a]. *)

type hb_kind = Spawn | Join | Rel_acq

val hb_edge : hb_kind -> src:Runtime.Value.tid -> dst:Runtime.Value.tid -> Runtime.Value.addr -> Fp.t
(** [addr] is the lock address for [Rel_acq] and [0] otherwise. *)

val lock_order : outer:Runtime.Value.addr -> inner:Runtime.Value.addr -> Fp.t

val postponed_state : (Runtime.Value.tid * string) list -> Fp.t
(** Fingerprint of a Racefuzzer postponed set: (tid, field) pairs,
    order-insensitive. *)

val of_trace : Runtime.Trace.t -> Set.t
(** Extract HB-edge and lock-order features from a recorded trace. *)

val record : ?registry:Obs.Metrics.t -> prefix:string -> Set.t -> unit
(** Record per-kind cardinalities as stable counters
    [<prefix>/racy_pair] etc. plus [<prefix>/total]. *)

(** {2 Corpus}

    A deterministic corpus of (seed, schedule-prefix) entries ranked by
    the coverage novelty they contributed when first observed.  The
    checkpoint format is a line-oriented text file (schema
    [narada.covcorpus/1]) so snapshots diff cleanly and replay
    byte-identically. *)
module Corpus : sig
  type entry = {
    en_id : int;
    en_seed : int64;  (** base RNG seed of the run *)
    en_prefix : int list;  (** forced schedule-choice prefix *)
    en_gain : int;  (** novelty contributed on admission *)
  }

  type t

  val create : unit -> t
  val coverage : t -> Set.t
  val entries : t -> entry list
  val size : t -> int

  val note : t -> seed:int64 -> prefix:int list -> Set.t -> int
  (** [note c ~seed ~prefix cov] folds [cov] into the accumulated
      coverage and returns its novelty; when positive the (seed,
      prefix) entry is admitted with that gain. *)

  val ranked : t -> entry list
  (** Entries by descending gain, ties by ascending id. *)

  val merge : t -> t -> unit
  (** [merge dst src]: union coverage and append [src]'s entries
      (re-numbered) — commutative on coverage, deterministic on entry
      order when callers merge in a fixed order. *)

  val digest : t -> string
  (** Stable hex fingerprint of (coverage, entries); equal digests ⇔
      byte-identical checkpoints. *)

  val save : t -> string -> unit
  val load : string -> (t, string) result
end
