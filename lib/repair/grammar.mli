(** The synchronization-repair grammar (ferrite-style): the space of
    candidate patches for one confirmed race, enumerated in added-sync
    cost order.

    Three primitive edits per racy side — synchronize the whole method,
    wrap the smallest top-level statement span covering the racy
    accesses in [synchronized (lock)], or replace the mutex of an
    existing wrapper that already covers them — under one of three lock
    disciplines:

    - {b common lock}: both sides hold one lock drawn from the
      program's own vocabulary ([this] and every portable monitor
      operand the racy classes already use);
    - {b owner lock}: each access holds the monitor of the object it
      goes through (the [other] of [other.f]) — the natural fix for
      cross-object races where no single lock text covers both sides;
    - {b global lock}: a fresh marker class ([NaradaLock]) plus a
      [static] lock field on the first racy class, wrapped around both
      sides — the coarse, deadlock-free fallback for symmetric
      cross-object races whose owner-lock repair would invert a lock
      order.

    Cost model (smaller = less added synchronization):
    - keeping an already-guarded side costs 0;
    - replacing the mutex of an existing wrapper costs {!cost_replace}
      (no new region is created);
    - wrapping a span costs {!cost_wrap} plus the structural size of
      the statements newly serialized;
    - synchronizing a method costs {!cost_sync_method} plus the size of
      its whole body (the coarsest local edit);
    - a global-lock candidate additionally pays {!cost_global} for the
      introduced class and field (the coarsest repair overall).

    A candidate's cost is the sum over its actions; {!candidates}
    returns the list sorted by (cost, description) so the first
    validated candidate is minimal w.r.t. the grammar. *)

type side = { sd_cls : Jir.Ast.id; sd_meth : Jir.Ast.id }

val side_qname : side -> string

type race_id = { rid_field : Jir.Ast.id; rid_a : side; rid_b : side }
(** Static identity of a race for repair purposes: field plus the
    unordered pair of methods containing the racy accesses (sides are
    stored in canonical order). *)

val race_id_of_key : Detect.Race.key -> (race_id, string) result
val race_id_to_string : race_id -> string
val compare_race_id : race_id -> race_id -> int

val key_matches : race_id -> Detect.Race.key -> bool
(** Does a detector report key denote this race (same field, same
    unordered method pair)? *)

type lockref = { lr_text : string; lr_expr : Jir.Ast.expr }
(** A lock operand with its canonical printed text. *)

type action =
  | Keep of side  (** already guarded under the candidate's discipline *)
  | Sync_method of side  (** implicit lock: [this] *)
  | Wrap_block of {
      wb_side : side;
      wb_from : int;
      wb_len : int;
      wb_lock : lockref;
    }
  | Replace_mutex of {
      rm_side : side;
      rm_occurrence : int;
      rm_old : string;
      rm_lock : lockref;
    }

type candidate = {
  ca_mode : string;  (** lock-discipline description, for the report *)
  ca_global : Jir.Ast.id option;
      (** class to receive the fresh static lock field (global mode) *)
  ca_actions : action list;  (** canonical side order; [Keep]s included *)
  ca_cost : int;
}

val cost_replace : int
val cost_wrap : int
val cost_sync_method : int
val cost_global : int

val action_to_string : action -> string
val candidate_to_string : candidate -> string

val candidates : Jir.Ast.program -> race_id -> candidate list
(** Every grammar candidate for the race, deduplicated and sorted by
    (cost, description).  Empty when a racy side cannot be located in
    the program. *)

val apply : Jir.Ast.program -> candidate -> (Jir.Ast.program, string) result
(** Apply the candidate's edits (introducing the global lock first when
    the candidate calls for one); the result still needs the full
    validation stack (compile, behavior, deadlock, re-detection). *)
