(* Line-based unified diff via longest-common-subsequence.  Quadratic in
   line counts, which is fine for Jir programs (hundreds of lines). *)

let split_lines s = String.split_on_char '\n' s |> Array.of_list

type op = Equal of string | Del of string | Add of string

let ops a b =
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = LCS length of a[i..] / b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then
      walk (i + 1) (j + 1) (Equal a.(i) :: acc)
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
      walk i (j + 1) (Add b.(j) :: acc)
    else if i < n then walk (i + 1) j (Del a.(i) :: acc)
    else List.rev acc
  in
  walk 0 0 []

(* Group ops into hunks with [context] lines of equal context. *)
let unified ?(context = 2) ?(from_label = "original") ?(to_label = "repaired")
    ~original ~patched () =
  let a = split_lines original and b = split_lines patched in
  let ops = ops a b in
  if List.for_all (function Equal _ -> true | _ -> false) ops then ""
  else begin
    (* Annotate each op with (old_line, new_line) 1-based positions. *)
    let annotated =
      let i = ref 1 and j = ref 1 in
      List.map
        (fun op ->
          let pos = (!i, !j) in
          (match op with
          | Equal _ ->
            incr i;
            incr j
          | Del _ -> incr i
          | Add _ -> incr j);
          (op, pos))
        ops
    in
    let arr = Array.of_list annotated in
    let n = Array.length arr in
    let is_change k =
      match fst arr.(k) with Equal _ -> false | Del _ | Add _ -> true
    in
    (* A line belongs to a hunk if within [context] of a change. *)
    let keep = Array.make n false in
    for k = 0 to n - 1 do
      if is_change k then
        for d = max 0 (k - context) to min (n - 1) (k + context) do
          keep.(d) <- true
        done
    done;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "--- %s\n+++ %s\n" from_label to_label);
    let k = ref 0 in
    while !k < n do
      if not keep.(!k) then incr k
      else begin
        let start = !k in
        let stop = ref start in
        while !stop < n - 1 && keep.(!stop + 1) do
          incr stop
        done;
        (* Hunk header: starting positions and line counts per side. *)
        let o_start, n_start = snd arr.(start) in
        let o_count = ref 0 and n_count = ref 0 in
        for d = start to !stop do
          match fst arr.(d) with
          | Equal _ ->
            incr o_count;
            incr n_count
          | Del _ -> incr o_count
          | Add _ -> incr n_count
        done;
        Buffer.add_string buf
          (Printf.sprintf "@@ -%d,%d +%d,%d @@\n" o_start !o_count n_start
             !n_count);
        for d = start to !stop do
          match fst arr.(d) with
          | Equal l -> Buffer.add_string buf (" " ^ l ^ "\n")
          | Del l -> Buffer.add_string buf ("-" ^ l ^ "\n")
          | Add l -> Buffer.add_string buf ("+" ^ l ^ "\n")
        done;
        k := !stop + 1
      end
    done;
    Buffer.contents buf
  end
