(* The repair loop.  Counterexample-guided in the ferrite mold: the
   grammar proposes, the full dynamic pipeline disposes.  Because
   candidates arrive in added-sync cost order and validation is a pure
   accept/reject, the first survivor is minimal w.r.t. the grammar. *)

module Ast = Jir.Ast
module Pipeline = Narada_core.Pipeline
module Synth = Narada_core.Synth
module Rf = Detect.Racefuzzer

type subject = {
  sj_prog : Ast.program;
  sj_cu : Jir.Code.unit_;
  sj_client_classes : Ast.id list;
  sj_seed_cls : Ast.id;
  sj_seed_meth : Ast.id;
}

let subject_of_unit cu ~client_classes ~seed_cls ~seed_meth =
  {
    sj_prog = Jir.Program.classes cu.Jir.Code.cu_program;
    sj_cu = cu;
    sj_client_classes = client_classes;
    sj_seed_cls = seed_cls;
    sj_seed_meth = seed_meth;
  }

type options = {
  eo_schedules : int;
  eo_confirm_runs : int;
  eo_fuel : int;
  eo_seed : int64;
  eo_jobs : int;
  eo_backends : Backend.kind list;
  eo_max_candidates : int;
  eo_overlock : bool;
}

let default_options =
  {
    eo_schedules = 2;
    eo_confirm_runs = 6;
    eo_fuel = 200_000;
    eo_seed = 7L;
    eo_jobs = 1;
    eo_backends = [ Backend.Interp; Backend.Compiled ];
    eo_max_candidates = 16;
    eo_overlock = false;
  }

type reject =
  | R_compile of string
  | R_behavior of string
  | R_deadlock of string
  | R_race_survives of Backend.kind
  | R_new_race of Backend.kind * string

let reject_to_string = function
  | R_compile msg -> "does not compile: " ^ msg
  | R_behavior msg -> "changes sequential behavior: " ^ msg
  | R_deadlock p -> "introduces lock-order inversion: " ^ p
  | R_race_survives b ->
    Printf.sprintf "race still confirmed under re-detection (%s backend)"
      (Backend.to_string b)
  | R_new_race (b, rid) ->
    Printf.sprintf "introduces a new confirmed race (%s backend): %s"
      (Backend.to_string b) rid

(* ---- baseline facts about the original program ---- *)

type baseline = {
  bl_output : string;  (** printed output of the sequential seed run *)
  bl_result : string;  (** canonical rendering of the seed result *)
  bl_pairs : string list;  (** lock-order ABBA pairs, canonical strings *)
  bl_detected : Grammar.race_id list;
      (** every race id the lockset pass reported on the original
          program — patched programs may show these, but nothing new *)
  bl_tests_of : Grammar.race_id -> (string * string * string) list;
      (** dedup keys of the tests that detected the race *)
}

let render_result = function
  | Ok None -> "ok"
  | Ok (Some v) -> "ok " ^ Runtime.Value.to_string v
  | Error msg -> "error " ^ msg

let seed_run (opts : options) cu sub =
  let _m, _tr, res =
    Runtime.Interp.record ~seed:opts.eo_seed ~fuel:opts.eo_fuel cu
      ~client_classes:sub.sj_client_classes ~cls:sub.sj_seed_cls
      ~meth:sub.sj_seed_meth
  in
  (* [record] captures printed output on the machine. *)
  (Runtime.Machine.output _m, render_result res)

let lock_pairs cu sub =
  match
    Deadlock.Lockorder.analyze cu ~client_classes:sub.sj_client_classes
      ~seed_cls:sub.sj_seed_cls ~seed_meth:sub.sj_seed_meth
  with
  | Error msg -> Error msg
  | Ok (_edges, pairs) ->
    Ok (List.sort_uniq String.compare (List.map Deadlock.Lockorder.pair_to_string pairs))

(* One seeded detection run: lockset candidates of a fresh instance. *)
let detect_once (inst : Rf.instance) ~seed : Detect.Race.report list =
  let lockset = Detect.Lockset.attach inst.Rf.ri_machine in
  let sched = Conc.Scheduler.random ~seed in
  ignore (Conc.Exec.run inst.Rf.ri_machine sched);
  Detect.Lockset.candidates lockset

let schedule_seed (opts : options) i =
  Int64.add opts.eo_seed (Int64.of_int (i * 1299709))

(* Drive one synthesized test for a few schedules; distinct candidate
   reports by static key, in key order. *)
let test_candidates (opts : options) (an : Pipeline.analysis) (t : Synth.test) :
    (Detect.Race.key * Detect.Race.report) list * Rf.instantiator =
  let instantiate = Pipeline.instantiator an t in
  let tbl : (Detect.Race.key, Detect.Race.report) Hashtbl.t = Hashtbl.create 8 in
  for i = 0 to opts.eo_schedules - 1 do
    match instantiate () with
    | Error _ -> ()
    | Ok inst ->
      List.iter
        (fun r ->
          let k = Detect.Race.key_of r in
          if not (Hashtbl.mem tbl k) then Hashtbl.replace tbl k r)
        (detect_once inst ~seed:(schedule_seed opts i))
  done;
  ( List.sort
      (fun (k1, _) (k2, _) -> Detect.Race.compare_key k1 k2)
      (Hashtbl.fold (fun k r acc -> (k, r) :: acc) tbl []),
    instantiate )

(* ---- validation ---- *)

let compile_patched prog =
  match Jir.Compile.compile_unit prog with
  | cu -> Ok cu
  | exception Jir.Diag.Error d -> Error (Jir.Diag.to_string d)

(* Tests of a (re)analysis that are relevant to the race: the ones whose
   dedup key detected it originally, plus every test targeting the racy
   field (re-synthesis can renumber tests, dedup keys are stable). *)
let relevant_tests (bl : baseline) (rid : Grammar.race_id) ~all
    (an : Pipeline.analysis) =
  if all then an.Pipeline.an_tests
  else
    let keys = bl.bl_tests_of rid in
    List.filter
      (fun t ->
        let k = Synth.dedup_key t.Synth.st_pair in
        List.mem k keys
        || String.equal t.Synth.st_pair.Narada_core.Pairs.p_field rid.Grammar.rid_field)
      an.Pipeline.an_tests

let rid_of_key_opt k =
  match Grammar.race_id_of_key k with Ok r -> Some r | Error _ -> None

let validate (opts : options) (sub : subject) (bl : baseline)
    (rid : Grammar.race_id) (cand : Grammar.candidate) :
    (Ast.program, reject) result =
  let reg = Obs.Metrics.global () in
  let ( let* ) = Result.bind in
  let* patched =
    Result.map_error (fun m -> R_compile m) (Grammar.apply sub.sj_prog cand)
  in
  let* cu = Result.map_error (fun m -> R_compile m) (compile_patched patched) in
  (* Sequential behavior must be preserved. *)
  let out, res = seed_run opts cu sub in
  let* () =
    if not (String.equal res bl.bl_result) then
      Error (R_behavior (Printf.sprintf "seed result %s (was %s)" res bl.bl_result))
    else if not (String.equal out bl.bl_output) then
      Error (R_behavior "seed output differs")
    else Ok ()
  in
  (* No new ABBA lock-order pair. *)
  let* pairs =
    Result.map_error (fun m -> R_compile m) (lock_pairs cu sub)
  in
  let* () =
    match List.find_opt (fun p -> not (List.mem p bl.bl_pairs)) pairs with
    | Some p ->
      Obs.Metrics.incr reg "repair/rejected_deadlock";
      Error (R_deadlock p)
    | None -> Ok ()
  in
  (* Only a mutex replacement can REMOVE protection, so only then must
     the whole test suite be rescanned for new races. *)
  let has_replace =
    List.exists
      (function Grammar.Replace_mutex _ -> true | _ -> false)
      cand.Grammar.ca_actions
  in
  (* Re-detection, per backend: the race must no longer be confirmable. *)
  let check_backend backend =
    match
      Pipeline.analyze ~seed:opts.eo_seed ~backend cu
        ~client_classes:sub.sj_client_classes ~seed_cls:sub.sj_seed_cls
        ~seed_meth:sub.sj_seed_meth
    with
    | Error msg -> Error (R_compile msg)
    | Ok an ->
      let tests = relevant_tests bl rid ~all:has_replace an in
      let rec scan = function
        | [] -> Ok ()
        | t :: rest ->
          let cands, instantiate = test_candidates opts an t in
          let rec check = function
            | [] -> scan rest
            | (k, r) :: more ->
              let ours = Grammar.key_matches rid k in
              let fresh =
                has_replace
                && (not ours)
                &&
                match rid_of_key_opt k with
                | None -> false
                | Some r' ->
                  not
                    (List.exists
                       (fun b -> Grammar.compare_race_id b r' = 0)
                       bl.bl_detected)
              in
              if not (ours || fresh) then check more
              else
                let confirm =
                  Rf.confirm ~instantiate ~cand:(Rf.candidate_of_report r)
                    ~runs:opts.eo_confirm_runs ~fuel:opts.eo_fuel
                    ~seed:opts.eo_seed ~jobs:opts.eo_jobs ()
                in
                if confirm.Rf.confirmed = None then check more
                else if ours then Error (R_race_survives backend)
                else
                  Error
                    (R_new_race
                       ( backend,
                         match rid_of_key_opt k with
                         | Some r' -> Grammar.race_id_to_string r'
                         | None -> Detect.Race.key_to_string k ))
          in
          check cands
      in
      scan tests
  in
  let rec over_backends = function
    | [] -> Ok patched
    | b :: rest -> (
      match check_backend b with Ok () -> over_backends rest | Error e -> Error e)
  in
  over_backends opts.eo_backends

(* ---- baseline construction ---- *)

let baseline_of (opts : options) (sub : subject) : (baseline, string) result =
  match lock_pairs sub.sj_cu sub with
  | Error msg -> Error msg
  | Ok pairs ->
    let out, res = seed_run opts sub.sj_cu sub in
    Ok
      {
        bl_output = out;
        bl_result = res;
        bl_pairs = pairs;
        bl_detected = [];
        bl_tests_of = (fun _ -> []);
      }

type attempt = { at_cand : Grammar.candidate; at_result : (unit, reject) result }

type outcome =
  | Repaired of { rc_cand : Grammar.candidate; rc_patched : Ast.program }
  | No_candidates
  | Not_repairable

type race_repair = {
  rr_id : Grammar.race_id;
  rr_key : Detect.Race.key;
  rr_verdict : Detect.Triage.verdict option;
  rr_outcome : outcome;
  rr_attempts : attempt list;
}

let repair_race (opts : options) (sub : subject) (bl : baseline)
    (rid : Grammar.race_id) ~key ~verdict : race_repair =
  Obs.Span.with_ "repair/race" (fun () ->
      let reg = Obs.Metrics.global () in
      let cands = Grammar.candidates sub.sj_prog rid in
      let cands = if opts.eo_overlock then List.rev cands else cands in
      let cands =
        List.filteri (fun i _ -> i < opts.eo_max_candidates) cands
      in
      let rec loop attempts = function
        | [] ->
          let rr_outcome =
            if attempts = [] then No_candidates else Not_repairable
          in
          { rr_id = rid; rr_key = key; rr_verdict = verdict; rr_outcome;
            rr_attempts = List.rev attempts }
        | c :: rest -> (
          Obs.Metrics.incr reg "repair/attempts";
          match validate opts sub bl rid c with
          | Ok patched ->
            Obs.Metrics.incr reg "repair/repaired";
            {
              rr_id = rid;
              rr_key = key;
              rr_verdict = verdict;
              rr_outcome = Repaired { rc_cand = c; rc_patched = patched };
              rr_attempts =
                List.rev ({ at_cand = c; at_result = Ok () } :: attempts);
            }
          | Error e ->
            loop ({ at_cand = c; at_result = Error e } :: attempts) rest)
      in
      loop [] cands)

(* ---- discovery + whole-subject loop ---- *)

type report = {
  rp_subject_classes : Ast.id list;
  rp_tests : int;
  rp_detected : int;
  rp_confirmed : int;
  rp_races : race_repair list;
  rp_seconds : float;
}

type discovered = {
  d_rid : Grammar.race_id;
  d_key : Detect.Race.key;
  d_verdict : Detect.Triage.verdict option;
}

let repair_all ?(opts = default_options) (sub : subject) :
    (report, string) result =
  Obs.Span.with_ ~root:true "repair/subject" (fun () ->
      let reg = Obs.Metrics.global () in
      let t0 = Obs.Clock.ticks () in
      match opts.eo_backends with
      | [] -> Error "repair: no backends configured"
      | discover_backend :: _ -> (
        match
          Pipeline.analyze ~seed:opts.eo_seed ~backend:discover_backend
            sub.sj_cu ~client_classes:sub.sj_client_classes
            ~seed_cls:sub.sj_seed_cls ~seed_meth:sub.sj_seed_meth
        with
        | Error msg -> Error msg
        | Ok an -> (
          (* Discovery: every confirmed race, its triage verdict, and —
             for the baseline — every detected race id with the tests
             that showed it. *)
          let detected : (Grammar.race_id * (string * string * string)) list ref =
            ref []
          in
          let confirmed : (Detect.Race.key * discovered) list ref = ref [] in
          List.iter
            (fun t ->
              let cands, instantiate = test_candidates opts an t in
              List.iter
                (fun (k, r) ->
                  match rid_of_key_opt k with
                  | None -> ()
                  | Some rid ->
                    detected :=
                      (rid, Synth.dedup_key t.Synth.st_pair) :: !detected;
                    if not (List.mem_assoc k !confirmed) then begin
                      let cand = Rf.candidate_of_report r in
                      let res =
                        Rf.confirm ~instantiate ~cand ~runs:opts.eo_confirm_runs
                          ~fuel:opts.eo_fuel ~seed:opts.eo_seed
                          ~jobs:opts.eo_jobs ()
                      in
                      if res.Rf.confirmed <> None then begin
                        let verdict =
                          match
                            Detect.Triage.triage ~instantiate ~cand
                              ~seed:opts.eo_seed ~fuel:opts.eo_fuel ()
                          with
                          | Ok v -> Some v
                          | Error _ -> None
                        in
                        confirmed :=
                          (k, { d_rid = rid; d_key = k; d_verdict = verdict })
                          :: !confirmed
                      end
                    end)
                cands)
            an.Pipeline.an_tests;
          let detected = !detected in
          let detected_rids =
            List.sort_uniq Grammar.compare_race_id (List.map fst detected)
          in
          (* Distinct repair targets, one per race id (a race id can show
             under several keys when pcs shift between tests). *)
          let targets =
            List.fold_left
              (fun acc (_, d) ->
                if
                  List.exists
                    (fun d' -> Grammar.compare_race_id d'.d_rid d.d_rid = 0)
                    acc
                then acc
                else d :: acc)
              [] (List.rev !confirmed)
          in
          let targets =
            List.sort (fun a b -> Grammar.compare_race_id a.d_rid b.d_rid) targets
          in
          Obs.Metrics.incr reg ~n:(List.length targets) "repair/races";
          match baseline_of opts sub with
          | Error msg -> Error msg
          | Ok bl ->
            let bl =
              {
                bl with
                bl_detected = detected_rids;
                bl_tests_of =
                  (fun rid ->
                    List.filter_map
                      (fun (r, k) ->
                        if Grammar.compare_race_id r rid = 0 then Some k else None)
                      detected);
              }
            in
            let races =
              List.map
                (fun d ->
                  repair_race opts sub bl d.d_rid ~key:d.d_key
                    ~verdict:d.d_verdict)
                targets
            in
            Ok
              {
                rp_subject_classes = sub.sj_client_classes;
                rp_tests = List.length an.Pipeline.an_tests;
                rp_detected = List.length detected_rids;
                rp_confirmed = List.length targets;
                rp_races = races;
                rp_seconds = Obs.Clock.elapsed_s ~since:t0;
              })))

let constructive (rr : race_repair) =
  match rr.rr_outcome with Repaired _ -> true | _ -> false

let diff_of (sub : subject) (patched : Ast.program) =
  Diff.unified
    ~original:(Jir.Pretty.program_to_string sub.sj_prog)
    ~patched:(Jir.Pretty.program_to_string patched)
    ()

(* ---- rendering ---- *)

let verdict_to_string = function
  | Some v -> Detect.Triage.verdict_to_string v
  | None -> "unknown"

let report_to_string ?(show_attempts = false) (sub : subject) (rp : report) :
    string =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "repair: %s\n" (String.concat ", " rp.rp_subject_classes);
  pf "  tests driven        %d\n" rp.rp_tests;
  pf "  races detected      %d\n" rp.rp_detected;
  pf "  races confirmed     %d\n" rp.rp_confirmed;
  let repaired = List.filter constructive rp.rp_races in
  pf "  races repaired      %d\n" (List.length repaired);
  pf "  seconds             %.2f\n" rp.rp_seconds;
  List.iter
    (fun rr ->
      pf "\n%s [%s]\n" (Grammar.race_id_to_string rr.rr_id)
        (verdict_to_string rr.rr_verdict);
      (match rr.rr_outcome with
      | Repaired { rc_cand; rc_patched } ->
        pf "  repaired (constructively confirmed real): %s\n"
          (Grammar.candidate_to_string rc_cand);
        pf "  deadlock check: clean (no new lock-order pair)\n";
        let d = diff_of sub rc_patched in
        String.split_on_char '\n' d
        |> List.iter (fun l -> if l <> "" then pf "  %s\n" l)
      | No_candidates -> pf "  no repair candidates expressible in the grammar\n"
      | Not_repairable ->
        pf "  not repairable: all %d candidates rejected\n"
          (List.length rr.rr_attempts));
      if show_attempts then
        List.iter
          (fun a ->
            pf "    tried %s -> %s\n"
              (Grammar.candidate_to_string a.at_cand)
              (match a.at_result with
              | Ok () -> "accepted"
              | Error e -> reject_to_string e))
          rr.rr_attempts)
    rp.rp_races;
  Buffer.contents buf
