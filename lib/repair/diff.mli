(** Minimal line-based unified diff, for printing repair patches.
    Deterministic, dependency-free; quadratic LCS is fine at Jir program
    sizes. *)

val unified :
  ?context:int -> ?from_label:string -> ?to_label:string ->
  original:string -> patched:string -> unit -> string
(** Unified diff of the two texts (split on ['\n']).  Returns [""] when
    the texts are equal.  [context] defaults to 2 lines. *)
