(* The repair grammar: candidate lock placements for one confirmed race,
   enumerated in added-synchronization cost order (the analogue of
   ferrite's sync-cost minimization).

   Everything here is syntactic and pure; soundness comes from the
   validation stack in [Engine], which re-runs the full dynamic pipeline
   on every candidate.  The grammar only has to be (a) generous enough
   to contain a fix when one exists in the lock-insertion space, and
   (b) honestly ordered by how much synchronization each candidate
   adds. *)

module Ast = Jir.Ast
module Rewrite = Jir.Rewrite

type side = { sd_cls : Ast.id; sd_meth : Ast.id }

let side_qname s = s.sd_cls ^ "." ^ s.sd_meth

let compare_side a b =
  match String.compare a.sd_cls b.sd_cls with
  | 0 -> String.compare a.sd_meth b.sd_meth
  | c -> c

type race_id = { rid_field : Ast.id; rid_a : side; rid_b : side }

let mk_race_id ~field a b =
  let a, b = if compare_side a b <= 0 then (a, b) else (b, a) in
  { rid_field = field; rid_a = a; rid_b = b }

let side_of_qname q =
  match Rewrite.split_qname q with
  | Some (cls, meth) -> Ok { sd_cls = cls; sd_meth = meth }
  | None -> Error (Printf.sprintf "unparseable racy site %S" q)

let race_id_of_key (k : Detect.Race.key) =
  let ( let* ) = Result.bind in
  let* a = side_of_qname k.Detect.Race.k_site1.Runtime.Event.s_meth in
  let* b = side_of_qname k.Detect.Race.k_site2.Runtime.Event.s_meth in
  Ok (mk_race_id ~field:k.Detect.Race.k_field a b)

let race_id_to_string r =
  Printf.sprintf "race on .%s: %s <-> %s" r.rid_field (side_qname r.rid_a)
    (side_qname r.rid_b)

let compare_race_id a b =
  match String.compare a.rid_field b.rid_field with
  | 0 -> (
    match compare_side a.rid_a b.rid_a with
    | 0 -> compare_side a.rid_b b.rid_b
    | c -> c)
  | c -> c

let key_matches r (k : Detect.Race.key) =
  match race_id_of_key k with
  | Error _ -> false
  | Ok r' -> compare_race_id r r' = 0

type lockref = { lr_text : string; lr_expr : Ast.expr }

let lockref_of e = { lr_text = Rewrite.lock_text e; lr_expr = e }

type action =
  | Keep of side
  | Sync_method of side
  | Wrap_block of {
      wb_side : side;
      wb_from : int;
      wb_len : int;
      wb_lock : lockref;
    }
  | Replace_mutex of {
      rm_side : side;
      rm_occurrence : int;
      rm_old : string;
      rm_lock : lockref;
    }

type candidate = {
  ca_mode : string;
  ca_global : Ast.id option;
  ca_actions : action list;
  ca_cost : int;
}

(* Base costs; scope-dependent terms are added per action. *)
let cost_replace = 2
let cost_wrap = 3
let cost_sync_method = 4
let cost_global = 6

let action_to_string = function
  | Keep s -> Printf.sprintf "keep %s (already guarded)" (side_qname s)
  | Sync_method s -> Printf.sprintf "synchronize method %s" (side_qname s)
  | Wrap_block { wb_side; wb_from; wb_len; wb_lock } ->
    Printf.sprintf "wrap %d stmt%s of %s (at %d) in synchronized (%s)" wb_len
      (if wb_len = 1 then "" else "s")
      (side_qname wb_side) wb_from wb_lock.lr_text
  | Replace_mutex { rm_side; rm_occurrence; rm_old; rm_lock } ->
    Printf.sprintf "replace mutex #%d of %s (%s -> %s)" rm_occurrence
      (side_qname rm_side) rm_old rm_lock.lr_text

let candidate_to_string c =
  Printf.sprintf "%s: %s [cost %d]" c.ca_mode
    (String.concat "; " (List.map action_to_string c.ca_actions))
    c.ca_cost

(* ---- lock vocabulary (common-lock mode) ---- *)

(* Locks usable as the one common lock: [this] (when every racy side is
   an instance method) plus every portable monitor operand already used
   by a [synchronized] block in either racy class.  Reusing the
   program's own vocabulary is what lets the grammar express "the class
   already has a lock field; take it". *)
let lock_vocabulary (prog : Ast.program) (r : race_id) ~all_instance =
  let classes =
    List.sort_uniq String.compare [ r.rid_a.sd_cls; r.rid_b.sd_cls ]
  in
  let from_syncs =
    List.concat_map
      (fun cls ->
        match List.find_opt (fun c -> String.equal c.Ast.c_name cls) prog with
        | None -> []
        | Some c ->
          List.concat_map
            (fun m -> if m.Ast.m_abstract then [] else Rewrite.sync_locks m)
            c.Ast.c_methods)
      classes
  in
  let portable = List.filter Rewrite.portable_lock from_syncs in
  let usable =
    if all_instance then portable
    else
      (* a static side cannot evaluate [this]-rooted paths *)
      List.filter
        (fun (e : Ast.expr) ->
          match e.Ast.desc with Ast.Estatic_field _ -> true | _ -> false)
        portable
  in
  let base = if all_instance then [ Rewrite.this_lock ] else [] in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun e ->
      let l = lockref_of e in
      if Hashtbl.mem seen l.lr_text then None
      else begin
        Hashtbl.replace seen l.lr_text ();
        Some l
      end)
    (base @ usable)

(* ---- costs and application ---- *)

let action_cost prog = function
  | Keep _ -> 0
  | Replace_mutex _ -> cost_replace
  | Wrap_block { wb_side; wb_from; wb_len; _ } -> (
    match Rewrite.find_method prog ~cls:wb_side.sd_cls ~meth:wb_side.sd_meth with
    | None -> max_int
    | Some m ->
      let span =
        List.filteri
          (fun i _ -> i >= wb_from && i < wb_from + wb_len)
          m.Ast.m_body
      in
      cost_wrap + Ast.block_size span)
  | Sync_method s -> (
    match Rewrite.find_method prog ~cls:s.sd_cls ~meth:s.sd_meth with
    | None -> max_int
    | Some m -> cost_sync_method + Ast.block_size m.Ast.m_body)

let apply_action prog = function
  | Keep _ -> Ok prog
  | Sync_method s ->
    Ok
      (Rewrite.map_method prog ~cls:s.sd_cls ~meth:s.sd_meth Rewrite.sync_method)
  | Wrap_block { wb_side = s; wb_from; wb_len; wb_lock } -> (
    match
      Rewrite.map_method prog ~cls:s.sd_cls ~meth:s.sd_meth
        (Rewrite.wrap_span ~from_:wb_from ~len:wb_len ~lock:wb_lock.lr_expr)
    with
    | prog' -> Ok prog'
    | exception Invalid_argument msg -> Error msg)
  | Replace_mutex { rm_side = s; rm_occurrence; rm_lock; _ } -> (
    match
      Rewrite.map_method prog ~cls:s.sd_cls ~meth:s.sd_meth
        (Rewrite.replace_sync_lock ~occurrence:rm_occurrence
           ~lock:rm_lock.lr_expr)
    with
    | prog' -> Ok prog'
    | exception Invalid_argument msg -> Error msg)

let apply prog (c : candidate) =
  let ( let* ) = Result.bind in
  let* prog =
    match c.ca_global with
    | None -> Ok prog
    | Some host -> Rewrite.add_global_lock prog ~host
  in
  List.fold_left
    (fun acc action ->
      let* prog = acc in
      apply_action prog action)
    (Ok prog) c.ca_actions

(* ---- per-side actions ---- *)

(* Common-lock discipline: every access to [field] on this side must be
   under a monitor printing as [lock.lr_text].  Each option is checked
   post-hoc: applying it must actually leave the method fully guarded
   (a mutex replacement that leaves a second, unwrapped access naked is
   discarded here, not at validation time). *)
let common_side_actions prog ~field ~(lock : lockref) (s : side) : action list =
  match Rewrite.find_method prog ~cls:s.sd_cls ~meth:s.sd_meth with
  | None -> []
  | Some m ->
    if Rewrite.guarded_everywhere ~field ~lock:lock.lr_text m then [ Keep s ]
    else begin
      let achieves action =
        match apply_action prog action with
        | Error _ -> false
        | Ok prog' -> (
          match Rewrite.find_method prog' ~cls:s.sd_cls ~meth:s.sd_meth with
          | None -> false
          | Some m' -> Rewrite.guarded_everywhere ~field ~lock:lock.lr_text m')
      in
      let wraps =
        match Rewrite.unguarded_top_indices ~field ~lock:lock.lr_text m with
        | [] -> []
        | idxs ->
          let lo = List.fold_left min max_int idxs in
          let hi = List.fold_left max min_int idxs in
          [
            Wrap_block
              { wb_side = s; wb_from = lo; wb_len = hi - lo + 1; wb_lock = lock };
          ]
      in
      let replaces =
        List.filter_map
          (fun (occ, old) ->
            if String.equal old lock.lr_text then None
            else
              Some
                (Replace_mutex
                   { rm_side = s; rm_occurrence = occ; rm_old = old;
                     rm_lock = lock }))
          (Rewrite.sync_wrappers_around ~field m)
      in
      let syncs =
        if
          String.equal lock.lr_text "this"
          && (not m.Ast.m_static)
          && not (Ast.is_ctor m)
        then [ Sync_method s ]
        else []
      in
      List.filter achieves (replaces @ wraps @ syncs)
    end

(* Owner discipline: every access holds the monitor of its own base
   object.  Expressible only when the unguarded accesses of the side go
   through a single base expression (then one wrapper fixes them all). *)
let owner_side_actions prog ~field (s : side) : action list =
  match Rewrite.find_method prog ~cls:s.sd_cls ~meth:s.sd_meth with
  | None -> []
  | Some m ->
    if Rewrite.owner_guarded_everywhere ~field m then [ Keep s ]
    else begin
      match Rewrite.owner_unguarded_top ~field m with
      | None | Some (_, []) | Some ([], _) -> []
      | Some (idxs, [ base ]) ->
        let lock = lockref_of base in
        let lo = List.fold_left min max_int idxs in
        let hi = List.fold_left max min_int idxs in
        let achieves action =
          match apply_action prog action with
          | Error _ -> false
          | Ok prog' -> (
            match Rewrite.find_method prog' ~cls:s.sd_cls ~meth:s.sd_meth with
            | None -> false
            | Some m' -> Rewrite.owner_guarded_everywhere ~field m')
        in
        let wrap =
          Wrap_block
            { wb_side = s; wb_from = lo; wb_len = hi - lo + 1; wb_lock = lock }
        in
        let syncs =
          if
            String.equal lock.lr_text "this"
            && (not m.Ast.m_static)
            && not (Ast.is_ctor m)
          then [ Sync_method s ]
          else []
        in
        List.filter achieves (wrap :: syncs)
      | Some (_, _ :: _ :: _) -> []
    end

(* ---- candidate enumeration ---- *)

let is_static_side prog (s : side) =
  match Rewrite.find_method prog ~cls:s.sd_cls ~meth:s.sd_meth with
  | None -> false
  | Some m -> m.Ast.m_static

(* Combine per-side action lists into whole candidates, dropping the
   all-[Keep] combos: a no-op patch cannot eliminate a dynamically
   confirmed race. *)
let combos ~self_race acts_a acts_b =
  let raw =
    if self_race then List.map (fun a -> [ a ]) acts_a
    else List.concat_map (fun a -> List.map (fun b -> [ a; b ]) acts_b) acts_a
  in
  List.filter
    (fun actions ->
      not (List.for_all (function Keep _ -> true | _ -> false) actions))
    raw

let candidates (prog : Ast.program) (r : race_id) : candidate list =
  let self_race = compare_side r.rid_a r.rid_b = 0 in
  let all_instance =
    (not (is_static_side prog r.rid_a)) && not (is_static_side prog r.rid_b)
  in
  let field = r.rid_field in
  let mk ~mode ~global actions =
    let cost =
      List.fold_left (fun acc a -> acc + action_cost prog a) 0 actions
    in
    let cost = if global = None then cost else cost + cost_global in
    if cost < 0 || cost >= cost_global + max_int / 2 then None
    else Some { ca_mode = mode; ca_global = global; ca_actions = actions;
                ca_cost = cost }
  in
  let common =
    List.concat_map
      (fun lock ->
        let acts_a = common_side_actions prog ~field ~lock r.rid_a in
        let acts_b =
          if self_race then []
          else common_side_actions prog ~field ~lock r.rid_b
        in
        List.filter_map
          (mk ~mode:(Printf.sprintf "lock (%s)" lock.lr_text) ~global:None)
          (combos ~self_race acts_a acts_b))
      (lock_vocabulary prog r ~all_instance)
  in
  let owner =
    let acts_a = owner_side_actions prog ~field r.rid_a in
    let acts_b =
      if self_race then [] else owner_side_actions prog ~field r.rid_b
    in
    List.filter_map (mk ~mode:"owner monitors" ~global:None)
      (combos ~self_race acts_a acts_b)
  in
  let global =
    (* Only expressible when the fresh names are free; host is the
       canonically-first racy class. *)
    let host = r.rid_a.sd_cls in
    match Rewrite.add_global_lock prog ~host with
    | Error _ -> []
    | Ok _ ->
      let lock =
        lockref_of
          (Ast.mk_expr (Ast.Estatic_field (host, Rewrite.global_lock_field)))
      in
      let acts_a = common_side_actions prog ~field ~lock r.rid_a in
      let acts_b =
        if self_race then [] else common_side_actions prog ~field ~lock r.rid_b
      in
      List.filter_map
        (mk
           ~mode:
             (Printf.sprintf "global lock (%s.%s)" host
                Rewrite.global_lock_field)
           ~global:(Some host))
        (combos ~self_race acts_a acts_b)
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.ca_cost b.ca_cost with
        | 0 -> String.compare (candidate_to_string a) (candidate_to_string b)
        | c -> c)
      (common @ owner @ global)
  in
  (* Owner-mode combos can coincide with a common-lock combo (a side
     whose accesses all go through [this]); keep the first occurrence
     of each distinct action list. *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun c ->
      let k =
        String.concat ";" (List.map action_to_string c.ca_actions)
        ^ match c.ca_global with None -> "" | Some h -> "+global:" ^ h
      in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    sorted
