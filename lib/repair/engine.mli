(** The CEGIS-style repair loop: propose candidates from {!Grammar} in
    added-sync cost order, validate each against the full dynamic
    pipeline, keep the first (hence minimal) survivor.

    Validation stack, cheapest first:
    + the patched program must still compile and type-check;
    + the sequential seed execution must be behavior-preserving
      (identical printed output and result);
    + the lock-order analysis of the patched program must introduce no
      new ABBA deadlock pair;
    + re-running synthesis + lockset detection + directed confirmation
      on the patched program, for every configured backend, must no
      longer confirm the race — and, for candidates that replace an
      existing mutex (the only edit that can remove protection), must
      confirm no race that the original program did not already show. *)

type subject = {
  sj_prog : Jir.Ast.program;
  sj_cu : Jir.Code.unit_;
  sj_client_classes : Jir.Ast.id list;
  sj_seed_cls : Jir.Ast.id;
  sj_seed_meth : Jir.Ast.id;
}

val subject_of_unit :
  Jir.Code.unit_ ->
  client_classes:Jir.Ast.id list ->
  seed_cls:Jir.Ast.id ->
  seed_meth:Jir.Ast.id ->
  subject
(** Recovers the AST from the unit's class table. *)

type options = {
  eo_schedules : int;  (** random schedules per test during re-detection *)
  eo_confirm_runs : int;  (** directed runs per candidate race *)
  eo_fuel : int;
  eo_seed : int64;
  eo_jobs : int;  (** fan-out inside confirmation runs *)
  eo_backends : Backend.kind list;  (** every one must agree the race is gone *)
  eo_max_candidates : int;  (** cap on grammar candidates tried per race *)
  eo_overlock : bool;
      (** fault injection for the Crucible oracle: try candidates in
          REVERSE cost order, returning a needlessly coarse repair *)
}

val default_options : options
(** 2 schedules, 6 confirm runs, fuel 200_000, seed 7, jobs 1, both
    backends, 16 candidates, overlock off. *)

type reject =
  | R_compile of string
  | R_behavior of string
  | R_deadlock of string  (** the offending new lock-order pair *)
  | R_race_survives of Backend.kind
  | R_new_race of Backend.kind * string

val reject_to_string : reject -> string

(** Everything about the original program the validator compares
    against; computed once per subject. *)
type baseline

val baseline_of : options -> subject -> (baseline, string) result

type attempt = { at_cand : Grammar.candidate; at_result : (unit, reject) result }

val validate :
  options -> subject -> baseline -> Grammar.race_id -> Grammar.candidate ->
  (Jir.Ast.program, reject) result
(** Run the full validation stack on one candidate; returns the patched
    program on success. *)

type outcome =
  | Repaired of { rc_cand : Grammar.candidate; rc_patched : Jir.Ast.program }
  | No_candidates  (** the grammar is empty for this race *)
  | Not_repairable  (** every candidate tried was rejected *)

type race_repair = {
  rr_id : Grammar.race_id;
  rr_key : Detect.Race.key;  (** witness key from discovery *)
  rr_verdict : Detect.Triage.verdict option;
  rr_outcome : outcome;
  rr_attempts : attempt list;  (** in the order tried *)
}

val repair_race :
  options -> subject -> baseline -> Grammar.race_id ->
  key:Detect.Race.key -> verdict:Detect.Triage.verdict option -> race_repair

type report = {
  rp_subject_classes : Jir.Ast.id list;
  rp_tests : int;  (** synthesized tests driven during discovery *)
  rp_detected : int;  (** distinct candidate races detected *)
  rp_confirmed : int;  (** races confirmed, i.e. repair targets *)
  rp_races : race_repair list;
  rp_seconds : float;
}

val repair_all : ?opts:options -> subject -> (report, string) result
(** Discover every confirmed race of the subject (synthesis → lockset →
    directed confirmation → triage, exactly the detection pipeline) and
    run the repair loop on each.  Deterministic for a given seed. *)

val constructive : race_repair -> bool
(** A race whose synthesized repair eliminates it under re-detection is
    constructively confirmed real — the repairability signal Triage-level
    reports cite. *)

val diff_of : subject -> Jir.Ast.program -> string
(** Unified diff between the subject's pretty-printed program and a
    patched program. *)

val report_to_string : ?show_attempts:bool -> subject -> report -> string
