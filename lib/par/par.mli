(** Multicore evaluation engine: a sharded work-stealing [Domain] pool
    and a deterministic fan-out/merge combinator.

    The evaluation campaign (§5) is embarrassingly parallel — every
    corpus class, every synthesized test and every schedule/confirmation
    run is an independent seeded VM execution.  [map] distributes such
    work across domains while keeping the result *bit-identical*
    regardless of the job count: inputs are split into index chunks,
    result [i] is written for input [i] whatever worker ran it, and
    seeds are derived per-index with {!seed} rather than from any
    shared mutable generator. *)

(** A fixed-size pool of worker domains.  Each worker owns a deque of
    tasks: the owner pops LIFO, idle workers steal FIFO from victims
    probed in seeded-random order, and an idle pool parks on a condvar
    (a sleeping domain does not stall minor collections).  Scheduling
    facts (queue high-water mark, steal counts, per-worker executed
    chunk/task counts, idle time) are flushed to the global metrics
    registry as volatile gauges at shutdown. *)
module Pool : sig
  type t

  type 'a future
  (** A handle for a submitted task's eventual result.  Futures share
      their pool's completion mutex/condvar — no per-future lock. *)

  val create : jobs:int -> t
  (** [create ~jobs] spawns [max 1 jobs] worker domains. *)

  val jobs : t -> int

  val submit : t -> (unit -> 'a) -> 'a future
  (** Enqueue a task (round-robin over the worker deques).  Raises
      [Invalid_argument] after [shutdown]. *)

  val await : 'a future -> 'a
  (** Block until the task has run; re-raises the task's exception.
      Must not be called from within a task running on the same pool
      (the worker would wait on itself). *)

  val shutdown : t -> unit
  (** Drain the deques, join every worker domain, and flush the pool's
      scheduling gauges ([par/pool/steals], [par/pool/chunks],
      [par/pool/queue_depth_hwm], per-worker tasks/chunks/idle) to the
      global registry.  Idempotent. *)
end

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val max_domains : unit -> int
(** The fan-out width cap applied by {!map}/{!mapi}: requesting more
    worker domains than cores is counter-productive (OCaml minor
    collections are stop-the-world across every running domain), so
    the effective width is [min jobs (max_domains ())].  Defaults to
    [Domain.recommended_domain_count ()]; override with
    {!set_max_domains} or the NARADA_PAR_MAX_DOMAINS environment
    variable. *)

val set_max_domains : int -> unit
(** Raise or lower the {!max_domains} cap (clamped to [>= 1]).  Used by
    tests to exercise genuine multi-domain merging on small machines,
    and by operators who know better than the default. *)

val seed : base:int64 -> index:int -> int64
(** Deterministic per-index seed derivation (splitmix64 finalizer over
    [base] and [index]); independent of job count and submission order. *)

val map : ?jobs:int -> ?chunk:int -> 'a list -> ('a -> 'b) -> 'b list
(** [map ~jobs xs f] applies [f] to every element on a private pool of
    [min jobs (max_domains ())] workers (default {!default_jobs}) and
    returns the results in input order.  Inputs are submitted as index
    chunks of [?chunk] elements (default: the granularity heuristic
    [max 1 (n / (8 * width))], ~8 chunks per worker) and a single
    completion latch synchronizes the fan-out — no per-element future.
    With an effective width of 1 (or a short list) no domain is
    spawned and this is [List.map].  If tasks raise, the exception of
    the smallest failing input index is re-raised after the pool is
    shut down — output (and failure) is deterministic regardless of
    [jobs]. *)

val mapi : ?jobs:int -> ?chunk:int -> 'a list -> (int -> 'a -> 'b) -> 'b list
(** Like {!map} but the function also receives the input index — the
    hook for per-index seed derivation. *)
