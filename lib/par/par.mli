(** Multicore evaluation engine: a fixed-size [Domain]-based worker
    pool with futures, and a deterministic fan-out/merge combinator.

    The evaluation campaign (§5) is embarrassingly parallel — every
    corpus class, every synthesized test and every schedule/confirmation
    run is an independent seeded VM execution.  [map] distributes such
    work across domains while keeping the result *bit-identical*
    regardless of the job count: tasks carry their input index, results
    are merged back in input order, and seeds are derived per-index with
    {!seed} rather than from any shared mutable generator. *)

(** A fixed-size pool of worker domains consuming a shared task queue. *)
module Pool : sig
  type t

  type 'a future
  (** A handle for a submitted task's eventual result. *)

  val create : jobs:int -> t
  (** [create ~jobs] spawns [max 1 jobs] worker domains. *)

  val jobs : t -> int

  val submit : t -> (unit -> 'a) -> 'a future
  (** Enqueue a task.  Raises [Invalid_argument] after [shutdown]. *)

  val await : 'a future -> 'a
  (** Block until the task has run; re-raises the task's exception.
      Must not be called from within a task running on the same pool
      (the worker would wait on itself). *)

  val shutdown : t -> unit
  (** Drain the queue, then join every worker domain.  Idempotent. *)
end

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val seed : base:int64 -> index:int -> int64
(** Deterministic per-index seed derivation (splitmix64 finalizer over
    [base] and [index]); independent of job count and submission order. *)

val map : ?jobs:int -> 'a list -> ('a -> 'b) -> 'b list
(** [map ~jobs xs f] applies [f] to every element on a private pool of
    [jobs] workers (default {!default_jobs}) and returns the results in
    input order.  With [jobs = 1] (or a short list) no domain is
    spawned and this is [List.map].  If tasks raise, the exception of
    the smallest input index is re-raised after the pool is shut down —
    output (and failure) is deterministic regardless of [jobs]. *)

val mapi : ?jobs:int -> 'a list -> (int -> 'a -> 'b) -> 'b list
(** Like {!map} but the function also receives the input index — the
    hook for per-index seed derivation. *)
