(* Domain pool + deterministic fan-out/merge.  See par.mli.

   The pool is a plain shared-queue design: a mutex/condvar protected
   task queue drained by [jobs] worker domains.  Futures are one-shot
   cells filled by the worker and awaited under their own mutex, so an
   [await] never blocks the queue.  Determinism is structural: [map]
   writes result [i] for input [i] and merges in input order, so the
   schedule of the workers is unobservable. *)

module Pool = struct
  type task = unit -> unit

  type t = {
    jobs : int;
    mu : Mutex.t;
    nonempty : Condition.t;
    queue : task Queue.t;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
    (* Scheduling facts (queue high-water mark, per-worker task counts,
       time spent waiting for work).  Inherently job-count dependent, so
       they are flushed as *volatile* gauges at shutdown. *)
    mutable qdepth_hwm : int;
    worker_tasks : int array;
    worker_idle_ns : int64 array;
  }

  type 'a state = Pending | Done of 'a | Failed of exn

  type 'a future = {
    f_mu : Mutex.t;
    f_ready : Condition.t;
    mutable f_state : 'a state;
  }

  let rec worker p i =
    Mutex.lock p.mu;
    let wait0 = Obs.Clock.ticks () in
    while Queue.is_empty p.queue && not p.stop do
      Condition.wait p.nonempty p.mu
    done;
    p.worker_idle_ns.(i) <-
      Int64.add p.worker_idle_ns.(i) (Obs.Clock.elapsed_ns ~since:wait0);
    (* Drain the queue even when stopping: shutdown waits for every
       submitted task to have run. *)
    if Queue.is_empty p.queue then Mutex.unlock p.mu
    else begin
      let task = Queue.pop p.queue in
      p.worker_tasks.(i) <- p.worker_tasks.(i) + 1;
      Mutex.unlock p.mu;
      task ();
      worker p i
    end

  let create ~jobs =
    let jobs = max 1 jobs in
    let p =
      {
        jobs;
        mu = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        stop = false;
        workers = [];
        qdepth_hwm = 0;
        worker_tasks = Array.make jobs 0;
        worker_idle_ns = Array.make jobs 0L;
      }
    in
    p.workers <- List.init jobs (fun i -> Domain.spawn (fun () -> worker p i));
    p

  let jobs p = p.jobs

  let submit p f =
    let fut = { f_mu = Mutex.create (); f_ready = Condition.create (); f_state = Pending } in
    let task () =
      let r = match f () with v -> Done v | exception e -> Failed e in
      Mutex.lock fut.f_mu;
      fut.f_state <- r;
      Condition.broadcast fut.f_ready;
      Mutex.unlock fut.f_mu
    in
    Mutex.lock p.mu;
    if p.stop then begin
      Mutex.unlock p.mu;
      invalid_arg "Par.Pool.submit: pool is shut down"
    end;
    Queue.push task p.queue;
    if Queue.length p.queue > p.qdepth_hwm then p.qdepth_hwm <- Queue.length p.queue;
    Condition.signal p.nonempty;
    Mutex.unlock p.mu;
    fut

  let await fut =
    Mutex.lock fut.f_mu;
    let rec wait () =
      match fut.f_state with
      | Pending ->
        Condition.wait fut.f_ready fut.f_mu;
        wait ()
      | Done v ->
        Mutex.unlock fut.f_mu;
        v
      | Failed e ->
        Mutex.unlock fut.f_mu;
        raise e
    in
    wait ()

  let shutdown p =
    Mutex.lock p.mu;
    p.stop <- true;
    Condition.broadcast p.nonempty;
    Mutex.unlock p.mu;
    let ws = p.workers in
    p.workers <- [];
    List.iter Domain.join ws;
    let reg = Obs.Metrics.global () in
    Obs.Metrics.gauge_max reg "par/pool/queue_depth_hwm" (float_of_int p.qdepth_hwm);
    Array.iteri
      (fun i n ->
        Obs.Metrics.gauge_add reg
          (Printf.sprintf "par/pool/worker%d/tasks" i)
          (float_of_int n))
      p.worker_tasks;
    Array.iteri
      (fun i ns ->
        Obs.Metrics.gauge_add reg
          (Printf.sprintf "par/pool/worker%d/idle_s" i)
          (Int64.to_float ns /. 1e9))
      p.worker_idle_ns
end

let default_jobs () = Domain.recommended_domain_count ()

(* splitmix64 finalizer over base + (index+1) * golden gamma. *)
let seed ~base ~index =
  let open Int64 in
  let s = add base (mul (of_int (index + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mapi ?jobs xs f =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length xs in
  if jobs = 1 || n <= 1 then List.mapi f xs
  else begin
    let p = Pool.create ~jobs:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        let futs = List.mapi (fun i x -> Pool.submit p (fun () -> f i x)) xs in
        (* Awaiting in input order both merges deterministically and, on
           failure, re-raises the smallest failing index's exception. *)
        List.map Pool.await futs)
  end

let map ?jobs xs f = mapi ?jobs xs (fun _ x -> f x)
