(* Sharded work-stealing domain pool + deterministic fan-out/merge.
   See par.mli.

   The previous pool was a single mutex/condvar task queue: every
   submit and every pop crossed one lock, every future allocated its
   own Mutex.t + Condition.t, and [map] created one future per list
   element.  At jobs=4 the whole campaign convoyed on that lock (and,
   worse, on stop-the-world minor GC once more domains were runnable
   than cores — BENCH_parallel.json recorded a 0.26x "speedup").

   This version shards the queue: one deque per worker, owner pops
   LIFO from the back, idle workers steal FIFO from the front of a
   victim chosen in seeded-random order.  [map]/[mapi] submit chunks
   of indices (granularity heuristic: ~8 chunks per worker), write
   results into a shared array slot per index, and synchronize on a
   single completion latch per fan-out — no per-task future, no
   per-future mutex.  Determinism is structural: result [i] is written
   for input [i] regardless of which worker ran the chunk, so the
   schedule of the workers is unobservable in the output.

   The effective fan-out width of [map]/[mapi] is clamped to
   {!max_domains} (default: the recommended domain count).  Running
   more worker domains than cores is how the inversion happened in the
   first place: OCaml's minor collections are stop-the-world across
   all domains, and a descheduled domain stalls every collection. *)

(* splitmix64 finalizer over base + (index+1) * golden gamma. *)
let seed ~base ~index =
  let open Int64 in
  let s = add base (mul (of_int (index + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let default_jobs () = Domain.recommended_domain_count ()

(* Fan-out width cap for [map]/[mapi].  Overridable for tests (which
   want to exercise multi-domain merging even on small machines) and
   via NARADA_PAR_MAX_DOMAINS for operational tuning. *)
let max_domains_override = Atomic.make 0

let max_domains () =
  match Atomic.get max_domains_override with
  | n when n > 0 -> n
  | _ -> (
    match Option.bind (Sys.getenv_opt "NARADA_PAR_MAX_DOMAINS") int_of_string_opt with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())

let set_max_domains n = Atomic.set max_domains_override (max 1 n)

module Pool = struct
  (* [t_chunk] tags batch-submitted chunk tasks so per-worker executed-
     chunk counts can be told apart from plain futures in the gauges. *)
  type task = { t_run : unit -> unit; t_chunk : bool }

  let dummy_task = { t_run = ignore; t_chunk = false }

  (* A growable ring deque; all operations run under the owning shard's
     lock, which is uncontended unless a thief is probing this shard. *)
  module Ring = struct
    type t = { mutable buf : task array; mutable head : int; mutable len : int }

    let create () = { buf = Array.make 16 dummy_task; head = 0; len = 0 }

    let grow r =
      let cap = Array.length r.buf in
      let buf = Array.make (2 * cap) dummy_task in
      for i = 0 to r.len - 1 do
        buf.(i) <- r.buf.((r.head + i) mod cap)
      done;
      r.buf <- buf;
      r.head <- 0

    let push_back r t =
      if r.len = Array.length r.buf then grow r;
      r.buf.((r.head + r.len) mod Array.length r.buf) <- t;
      r.len <- r.len + 1

    let pop_back r =
      if r.len = 0 then None
      else begin
        let i = (r.head + r.len - 1) mod Array.length r.buf in
        let t = r.buf.(i) in
        r.buf.(i) <- dummy_task;
        r.len <- r.len - 1;
        Some t
      end

    let pop_front r =
      if r.len = 0 then None
      else begin
        let t = r.buf.(r.head) in
        r.buf.(r.head) <- dummy_task;
        r.head <- (r.head + 1) mod Array.length r.buf;
        r.len <- r.len - 1;
        Some t
      end
  end

  type shard = { sh_mu : Mutex.t; sh_ring : Ring.t }

  type t = {
    jobs : int;
    shards : shard array; (* one per worker *)
    mu : Mutex.t; (* sleep/wake + lifecycle *)
    wake : Condition.t;
    mutable stop : bool;
    pending : int Atomic.t; (* tasks enqueued and not yet taken *)
    mutable rr : int; (* round-robin submission cursor, under [mu] *)
    mutable workers : unit Domain.t list;
    (* Futures share one mutex/condvar per pool instead of allocating a
       pair each: completions broadcast, awaiters re-check their cell. *)
    fut_mu : Mutex.t;
    fut_ready : Condition.t;
    (* Scheduling facts (queue high-water mark, steals, per-worker chunk
       and task counts, idle time).  Inherently job-count dependent, so
       they are flushed as *volatile* gauges at shutdown. *)
    mutable qdepth_hwm : int;
    steals : int Atomic.t;
    worker_tasks : int array;
    worker_chunks : int array;
    worker_idle_ns : int64 array;
  }

  type 'a state = Pending | Done of 'a | Failed of exn

  type 'a future = { f_pool : t; mutable f_state : 'a state }

  (* Seeded-random victim order: reproducible steal schedules given the
     worker index, independent of wall clock. *)
  let victim_rng i =
    let state = ref (seed ~base:0x4E41524144415L ~index:i) in
    fun bound ->
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      let z = !state in
      let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
      Int64.to_int z land max_int mod bound

  let pop_own p i =
    let sh = p.shards.(i) in
    Mutex.lock sh.sh_mu;
    let t = Ring.pop_back sh.sh_ring in
    Mutex.unlock sh.sh_mu;
    t

  let steal_from p v =
    let sh = p.shards.(v) in
    Mutex.lock sh.sh_mu;
    let t = Ring.pop_front sh.sh_ring in
    Mutex.unlock sh.sh_mu;
    t

  (* One full acquisition attempt for worker [i]: own deque first, then
     every victim once, starting from a random rotation. *)
  let try_take p i rng =
    match pop_own p i with
    | Some t -> Some t
    | None ->
      if p.jobs <= 1 then None
      else begin
        let start = rng (p.jobs - 1) in
        let found = ref None in
        let k = ref 0 in
        while !found = None && !k < p.jobs - 1 do
          let v = (i + 1 + ((start + !k) mod (p.jobs - 1))) mod p.jobs in
          (match steal_from p v with
          | Some t ->
            Atomic.incr p.steals;
            found := Some t
          | None -> ());
          incr k
        done;
        !found
      end

  let rec worker p i rng =
    match try_take p i rng with
    | Some t ->
      Atomic.decr p.pending;
      p.worker_tasks.(i) <- p.worker_tasks.(i) + 1;
      if t.t_chunk then p.worker_chunks.(i) <- p.worker_chunks.(i) + 1;
      t.t_run ();
      worker p i rng
    | None ->
      Mutex.lock p.mu;
      if Atomic.get p.pending > 0 then begin
        (* Work appeared between the failed sweep and the lock. *)
        Mutex.unlock p.mu;
        worker p i rng
      end
      else if p.stop then Mutex.unlock p.mu
      else begin
        let wait0 = Obs.Clock.ticks () in
        Condition.wait p.wake p.mu;
        p.worker_idle_ns.(i) <-
          Int64.add p.worker_idle_ns.(i) (Obs.Clock.elapsed_ns ~since:wait0);
        Mutex.unlock p.mu;
        worker p i rng
      end

  let create ~jobs =
    let jobs = max 1 jobs in
    let p =
      {
        jobs;
        shards =
          Array.init jobs (fun _ ->
              { sh_mu = Mutex.create (); sh_ring = Ring.create () });
        mu = Mutex.create ();
        wake = Condition.create ();
        stop = false;
        pending = Atomic.make 0;
        rr = 0;
        workers = [];
        fut_mu = Mutex.create ();
        fut_ready = Condition.create ();
        qdepth_hwm = 0;
        steals = Atomic.make 0;
        worker_tasks = Array.make jobs 0;
        worker_chunks = Array.make jobs 0;
        worker_idle_ns = Array.make jobs 0L;
      }
    in
    p.workers <-
      List.init jobs (fun i -> Domain.spawn (fun () -> worker p i (victim_rng i)));
    p

  let jobs p = p.jobs

  (* Enqueue under [mu] bookkeeping: round-robin shard choice, pending
     count, queue high-water mark, wakeups.  The shard lock is taken
       only for the push itself. *)
  let enqueue p task =
    Mutex.lock p.mu;
    if p.stop then begin
      Mutex.unlock p.mu;
      invalid_arg "Par.Pool.submit: pool is shut down"
    end;
    let shard = p.shards.(p.rr mod p.jobs) in
    p.rr <- p.rr + 1;
    Mutex.lock shard.sh_mu;
    Ring.push_back shard.sh_ring task;
    Mutex.unlock shard.sh_mu;
    let d = Atomic.fetch_and_add p.pending 1 + 1 in
    if d > p.qdepth_hwm then p.qdepth_hwm <- d;
    Condition.signal p.wake;
    Mutex.unlock p.mu

  let submit p f =
    let fut = { f_pool = p; f_state = Pending } in
    let run () =
      let r = match f () with v -> Done v | exception e -> Failed e in
      Mutex.lock p.fut_mu;
      fut.f_state <- r;
      Condition.broadcast p.fut_ready;
      Mutex.unlock p.fut_mu
    in
    enqueue p { t_run = run; t_chunk = false };
    fut

  (* Batched submission for [mapi]: distribute all chunks round-robin
     across the shards, then wake every worker once. *)
  let submit_chunks p fs =
    Mutex.lock p.mu;
    if p.stop then begin
      Mutex.unlock p.mu;
      invalid_arg "Par.Pool.submit_chunks: pool is shut down"
    end;
    let n = ref 0 in
    List.iter
      (fun f ->
        let shard = p.shards.(p.rr mod p.jobs) in
        p.rr <- p.rr + 1;
        Mutex.lock shard.sh_mu;
        Ring.push_back shard.sh_ring { t_run = f; t_chunk = true };
        Mutex.unlock shard.sh_mu;
        incr n)
      fs;
    let d = Atomic.fetch_and_add p.pending !n + !n in
    if d > p.qdepth_hwm then p.qdepth_hwm <- d;
    Condition.broadcast p.wake;
    Mutex.unlock p.mu

  let await fut =
    let p = fut.f_pool in
    Mutex.lock p.fut_mu;
    let rec wait () =
      match fut.f_state with
      | Pending ->
        Condition.wait p.fut_ready p.fut_mu;
        wait ()
      | Done v ->
        Mutex.unlock p.fut_mu;
        v
      | Failed e ->
        Mutex.unlock p.fut_mu;
        raise e
    in
    wait ()

  let shutdown p =
    Mutex.lock p.mu;
    p.stop <- true;
    Condition.broadcast p.wake;
    Mutex.unlock p.mu;
    let ws = p.workers in
    p.workers <- [];
    List.iter Domain.join ws;
    if ws <> [] then begin
      let reg = Obs.Metrics.global () in
      Obs.Metrics.gauge_max reg "par/pool/queue_depth_hwm"
        (float_of_int p.qdepth_hwm);
      Obs.Metrics.gauge_add reg "par/pool/steals"
        (float_of_int (Atomic.get p.steals));
      Obs.Metrics.gauge_add reg "par/pool/chunks"
        (float_of_int (Array.fold_left ( + ) 0 p.worker_chunks));
      Array.iteri
        (fun i n ->
          Obs.Metrics.gauge_add reg
            (Printf.sprintf "par/pool/worker%d/tasks" i)
            (float_of_int n))
        p.worker_tasks;
      Array.iteri
        (fun i n ->
          Obs.Metrics.gauge_add reg
            (Printf.sprintf "par/pool/worker%d/chunks" i)
            (float_of_int n))
        p.worker_chunks;
      Array.iteri
        (fun i ns ->
          Obs.Metrics.gauge_add reg
            (Printf.sprintf "par/pool/worker%d/idle_s" i)
            (Int64.to_float ns /. 1e9))
        p.worker_idle_ns
    end
end

(* One completion latch per fan-out: the caller sleeps until every
   chunk has arrived; task failures record the smallest failing input
   index so the raised exception is job-count independent. *)
module Latch = struct
  type t = {
    l_mu : Mutex.t;
    l_done : Condition.t;
    mutable l_remaining : int;
    mutable l_fail : (int * exn) option;
  }

  let create n =
    { l_mu = Mutex.create (); l_done = Condition.create (); l_remaining = n; l_fail = None }

  let arrive l =
    Mutex.lock l.l_mu;
    l.l_remaining <- l.l_remaining - 1;
    if l.l_remaining = 0 then Condition.broadcast l.l_done;
    Mutex.unlock l.l_mu

  let record_failure l ~index e =
    Mutex.lock l.l_mu;
    (match l.l_fail with
    | Some (j, _) when j <= index -> ()
    | Some _ | None -> l.l_fail <- Some (index, e));
    Mutex.unlock l.l_mu

  let await l =
    Mutex.lock l.l_mu;
    while l.l_remaining > 0 do
      Condition.wait l.l_done l.l_mu
    done;
    Mutex.unlock l.l_mu

  let failure l =
    Mutex.lock l.l_mu;
    let f = l.l_fail in
    Mutex.unlock l.l_mu;
    f
end

let mapi ?jobs ?chunk xs f =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let width = min jobs (max_domains ()) in
  let n = List.length xs in
  if width <= 1 || n <= 1 then List.mapi f xs
  else begin
    let width = min width n in
    let input = Array.of_list xs in
    let out = Array.make n None in
    (* Granularity heuristic: ~8 chunks per worker, so stealing can
       rebalance an uneven tail without per-element task overhead. *)
    let chunk_size =
      match chunk with Some c -> max 1 c | None -> max 1 (n / (8 * width))
    in
    let nchunks = (n + chunk_size - 1) / chunk_size in
    let latch = Latch.create nchunks in
    let chunk_body ci () =
      let lo = ci * chunk_size in
      let hi = min n (lo + chunk_size) in
      let i = ref lo in
      (try
         while !i < hi do
           out.(!i) <- Some (f !i input.(!i));
           incr i
         done
       with e -> Latch.record_failure latch ~index:!i e);
      Latch.arrive latch
    in
    let p = Pool.create ~jobs:width in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () ->
        Pool.submit_chunks p (List.init nchunks chunk_body);
        (* The caller blocks on the latch rather than competing for
           chunks: the [width] workers saturate the width budget and a
           sleeping domain does not stall minor collections. *)
        Latch.await latch);
    match Latch.failure latch with
    | Some (_, e) -> raise e
    | None -> Array.to_list (Array.map Option.get out)
  end

let map ?jobs ?chunk xs f = mapi ?jobs ?chunk xs (fun _ x -> f x)
