(* A ConTeGe-style baseline (Pradel & Gross, PLDI'12): fully random
   concurrent test generation with a thread-safety-violation oracle.

   Each generated test builds an object of the class under test with a
   random sequential prefix, then runs two random call suffixes from two
   threads.  A test is a *violation* witness when some interleaved
   execution crashes or deadlocks while both serializations run
   cleanly.  Unlike Narada there is no direction: methods and sharing
   are chosen blindly, which is why the paper's comparison shows it
   missing almost everything (§5: thousands of tests, 3 violations in
   total across the corpus).

   Tests are generated as Jir source (so they are printable and
   independently runnable), then compiled and executed in-process. *)

(* Random choices go through the shared unbiased generator; [Rng.pick]
   raises a descriptive [Invalid_argument] on an empty list instead of
   the historical [Division_by_zero]. *)
type rng = Rng.t

let mk_rng seed = Rng.create seed

let below = Rng.below

let pick = Rng.pick

(* ------------------------------------------------------------------ *)
(* Source generation                                                   *)
(* ------------------------------------------------------------------ *)

type gen = {
  g_prog : Jir.Program.t;
  g_rng : rng;
  buf : Buffer.t; (* prefix declarations (main-local) *)
  mutable fresh : int;
  mutable pool : (Jir.Ast.ty * string) list; (* constructed locals *)
}

let fresh_var g =
  let v = Printf.sprintf "v%d" g.fresh in
  g.fresh <- g.fresh + 1;
  v

(* Concrete classes implementing an interface (or the class itself). *)
let implementers g (iface : string) : string list =
  List.filter_map
    (fun (c : Jir.Ast.class_decl) ->
      if
        c.Jir.Ast.c_kind = Jir.Ast.Kclass
        && (String.equal c.Jir.Ast.c_name iface
           || List.mem iface
                (Jir.Program.implemented_interfaces g.g_prog c.Jir.Ast.c_name))
      then Some c.Jir.Ast.c_name
      else None)
    (Jir.Program.classes g.g_prog)

(* Produce an expression of the requested type.  In [inline] mode the
   expression must be self-contained (suffix calls run inside Worker
   bodies that cannot see main's locals); otherwise helper declarations
   may be emitted into the prefix and pooled. *)
let rec expr_of_ty g (ty : Jir.Ast.ty) ~depth ~inline : string option =
  match ty with
  | Jir.Ast.Tint -> Some (string_of_int (below g.g_rng 10))
  | Jir.Ast.Tbool -> Some (if below g.g_rng 2 = 0 then "true" else "false")
  | Jir.Ast.Tstr -> Some "\"select 1 from t\""
  | Jir.Ast.Tarray elt -> (
    match elt with
    | Jir.Ast.Tint -> Some "new int[8]"
    | Jir.Ast.Tbool -> Some "new bool[8]"
    | Jir.Ast.Tclass c -> Some (Printf.sprintf "new %s[8]" c)
    | Jir.Ast.Tstr | Jir.Ast.Tarray _ | Jir.Ast.Tvoid | Jir.Ast.Tthread -> None)
  | Jir.Ast.Tclass c -> (
    let compatible =
      List.filter
        (fun (t, _) -> Jir.Program.is_subtype g.g_prog t (Jir.Ast.Tclass c))
        g.pool
    in
    match compatible with
    | (_, v) :: _ when (not inline) && below g.g_rng 2 = 0 -> Some v
    | _ -> construct_class g c ~depth ~inline)
  | Jir.Ast.Tvoid | Jir.Ast.Tthread -> None

(* A constructor expression "new Impl(args)"; in non-inline mode the
   object is bound to a fresh prefix local and pooled. *)
and construct_class g (c : string) ~depth ~inline : string option =
  if depth <= 0 then None
  else
    match implementers g c with
    | [] -> None
    | impls ->
      (* Try a randomly-picked implementation first, falling back to the
         others so deep wrapper chains cannot starve construction. *)
      let first = pick g.g_rng impls in
      let ordered = first :: List.filter (fun i -> i <> first) impls in
      let try_impl impl =
        let ctors = Jir.Program.constructors g.g_prog impl in
        let params =
          match ctors with
          | [] -> Some []
          | _ -> (
            let ctor = pick g.g_rng ctors in
            let rec build = function
              | [] -> Some []
              | (t, _) :: rest -> (
                match expr_of_ty g t ~depth:(depth - 1) ~inline with
                | Some e -> Option.map (fun es -> e :: es) (build rest)
                | None -> None)
            in
            build ctor.Jir.Ast.m_params)
        in
        match params with
        | None -> None
        | Some args ->
          let expr = Printf.sprintf "new %s(%s)" impl (String.concat ", " args) in
          if inline then Some expr
          else begin
            let v = fresh_var g in
            Buffer.add_string g.buf (Printf.sprintf "    %s %s = %s;\n" impl v expr);
            g.pool <- (Jir.Ast.Tclass impl, v) :: g.pool;
            Some v
          end
      in
      List.fold_left
        (fun acc impl -> match acc with Some _ -> acc | None -> try_impl impl)
        None ordered

(* A random call statement on [recv_expr] for an object of class [cls]. *)
let random_call g ~cls ~recv_expr ~inline : string option =
  match Jir.Program.concrete_methods g.g_prog cls with
  | [] -> None
  | methods -> (
    let _, m = pick g.g_rng methods in
    let rec build = function
      | [] -> Some []
      | (t, _) :: rest -> (
        match expr_of_ty g t ~depth:2 ~inline with
        | Some e -> Option.map (fun es -> e :: es) (build rest)
        | None -> None)
    in
    match build m.Jir.Ast.m_params with
    | None -> None
    | Some args ->
      Some
        (Printf.sprintf "%s.%s(%s);" recv_expr m.Jir.Ast.m_name
           (String.concat ", " args)))

type generated = {
  gen_index : int;
  gen_source : string; (* full program: library + workers + test class *)
}

(* Generate one random concurrent test for the class under test. *)
let generate (prog : Jir.Program.t) ~(cut : string) ~(lib_source : string)
    ~(seed : int64) ~(index : int) : generated option =
  let g =
    {
      g_prog = prog;
      g_rng = mk_rng (Int64.add seed (Int64.of_int (index * 1000003)));
      buf = Buffer.create 256;
      fresh = 0;
      pool = [];
    }
  in
  match construct_class g cut ~depth:3 ~inline:false with
  | None -> None
  | Some recv ->
    let prefix_calls = below g.g_rng 3 in
    for _ = 1 to prefix_calls do
      match random_call g ~cls:cut ~recv_expr:recv ~inline:false with
      | Some stmt -> Buffer.add_string g.buf ("    " ^ stmt ^ "\n")
      | None -> ()
    done;
    let suffix () =
      let n = 1 + below g.g_rng 2 in
      let stmts = ref [] in
      for _ = 1 to n do
        match random_call g ~cls:cut ~recv_expr:"this.target" ~inline:true with
        | Some s -> stmts := s :: !stmts
        | None -> ()
      done;
      if !stmts = [] then None else Some (List.rev !stmts)
    in
    (match (suffix (), suffix ()) with
    | Some s1, Some s2 ->
      let prefix = Buffer.contents g.buf in
      let worker name stmts =
        Printf.sprintf
          "class %s {\n  %s target;\n  %s(%s t) { this.target = t; }\n\
          \  void run() {\n    %s\n  }\n}\n"
          name cut name cut
          (String.concat "\n    " stmts)
      in
      let body =
        Printf.sprintf "%s    WorkerA wa = new WorkerA(%s);\n    WorkerB wb = new WorkerB(%s);\n"
          prefix recv recv
      in
      let src =
        Printf.sprintf
          "%s\n%s\n%s\nclass ContegeTest {\n\
          \  static void concurrent() {\n%s    thread t1 = spawn wa.run();\n    thread t2 = spawn wb.run();\n    join t1;\n    join t2;\n  }\n\
          \  static void serial12() {\n%s    wa.run();\n    wb.run();\n  }\n\
          \  static void serial21() {\n%s    wb.run();\n    wa.run();\n  }\n}\n"
          lib_source
          (worker "WorkerA" s1)
          (worker "WorkerB" s2)
          body body body
      in
      Some { gen_index = index; gen_source = src }
    | (Some _ | None), _ -> None)

(* ------------------------------------------------------------------ *)
(* The thread-safety-violation oracle                                  *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Violation of string (* concurrent failure absent from serial runs *)
  | Passed
  | Invalid (* fails sequentially too, or does not compile *)

let run_entry cu ~meth ~sched =
  let r, _m =
    Conc.Exec.run_program cu
      ~client_classes:[ "ContegeTest"; "WorkerA"; "WorkerB" ]
      ~cls:"ContegeTest" ~meth sched
  in
  r

let check (gen : generated) ~schedules ~seed : verdict =
  match Jir.Compile.compile_source gen.gen_source with
  | exception Jir.Diag.Error _ -> Invalid
  | cu -> (
    let serial_fails meth =
      let r = run_entry cu ~meth ~sched:(Conc.Scheduler.round_robin ()) in
      r.Conc.Exec.crashes <> [] || r.Conc.Exec.outcome <> Conc.Exec.All_finished
    in
    if serial_fails "serial12" || serial_fails "serial21" then Invalid
    else
      let rec try_schedule i =
        if i >= schedules then Passed
        else
          let sched =
            Conc.Scheduler.random ~seed:(Int64.add seed (Int64.of_int (i * 7919)))
          in
          let r = run_entry cu ~meth:"concurrent" ~sched in
          match (r.Conc.Exec.crashes, r.Conc.Exec.outcome) with
          | (_, msg) :: _, _ -> Violation msg
          | [], Conc.Exec.Deadlock _ -> Violation "deadlock"
          | [], (Conc.Exec.All_finished | Conc.Exec.Fuel_exhausted) ->
            try_schedule (i + 1)
      in
      try_schedule 0)

type campaign = {
  ca_tests : int; (* generation attempts *)
  ca_valid : int; (* compiled and sequentially sound *)
  ca_violations : int;
  ca_first_violation : int option;
  ca_example : string option; (* source of the first violating test *)
}

(* Run a ConTeGe campaign against a corpus entry. *)
let campaign (e : Corpus.Corpus_def.entry) ~budget ~schedules ~seed : campaign =
  match Jir.Compile.compile_source e.Corpus.Corpus_def.e_source with
  | exception Jir.Diag.Error _ ->
    {
      ca_tests = 0;
      ca_valid = 0;
      ca_violations = 0;
      ca_first_violation = None;
      ca_example = None;
    }
  | cu ->
    let prog = cu.Jir.Code.cu_program in
    let valid = ref 0 and violations = ref 0 in
    let first = ref None and example = ref None in
    for i = 0 to budget - 1 do
      match
        generate prog ~cut:e.Corpus.Corpus_def.e_name
          ~lib_source:e.Corpus.Corpus_def.e_source ~seed ~index:i
      with
      | None -> ()
      | Some gen -> (
        match check gen ~schedules ~seed with
        | Invalid -> ()
        | Passed -> incr valid
        | Violation _ ->
          incr valid;
          incr violations;
          if !first = None then begin
            first := Some i;
            example := Some gen.gen_source
          end)
    done;
    {
      ca_tests = budget;
      ca_valid = !valid;
      ca_violations = !violations;
      ca_first_violation = !first;
      ca_example = !example;
    }
