(** The benchmark registry: the nine classes of Table 3, in order. *)

val all : Corpus_def.entry list
(** The nine Table 3 classes, C1..C9. *)

val extras : Corpus_def.entry list
(** The footnote-5 openjdk wrapper family (X1..X3): races "very similar
    to SynchronizedCollection", excluded from the paper's tables. *)

val find : string -> Corpus_def.entry option
(** Case-insensitive lookup by id over [all] and [extras]. *)

val ids : string list

(** A string-keyed publish-once cache: lock-free reads of an immutable
    snapshot in the steady state, "compute at most once" on the slow
    path (racing domains wait instead of recomputing).  The registry's
    compiled-unit cache is one instance; the compiled-code backend
    keys another by unit content digest. *)
module Keyed_cache (V : sig
  type t
end) : sig
  type t

  val create : unit -> t

  val find_or_compute : t -> string -> (unit -> V.t) -> V.t
end

val compiled_unit : Corpus_def.entry -> Jir.Code.unit_
(** Memoized compilation of an entry's source, shared by the CLI,
    tests, bench and the evaluation harness.  Domain-safe and
    contention-free in the steady state: published units are read from
    an immutable snapshot without locking, compilation happens outside
    the publication lock, and "compile at most once" is preserved.
    Raises [Jir.Diag.Error] like {!Jir.Compile.compile_source} on the
    (never expected) failure to compile a corpus source. *)

val warm : Corpus_def.entry list -> unit
(** Pre-compile the given entries (sequentially, on the calling
    domain).  Campaign entry points call this before fanning out so
    worker domains only ever take the lock-free read path. *)

val warm_all : unit -> unit
(** {!warm} over [all] and [extras]. *)
