(* The benchmark registry: the nine classes of Table 3, in order. *)

let all : Corpus_def.entry list =
  [
    C1_write_behind_queue.entry;
    C2_synchronized_collection.entry;
    C3_char_array_writer.entry;
    C4_dynamic_bin.entry;
    C5_double_int_index.entry;
    C6_scanner.entry;
    C7_pooled_executor.entry;
    C8_sequence.entry;
    C9_char_array_reader.entry;
  ]

(* The footnote-5 openjdk wrapper family (races "very similar to
   SynchronizedCollection"); not part of the paper's tables. *)
let extras : Corpus_def.entry list = Openjdk_extras.entries

let find id =
  List.find_opt
    (fun (e : Corpus_def.entry) ->
      String.equal (String.lowercase_ascii e.Corpus_def.e_id)
        (String.lowercase_ascii id))
    (all @ extras)

let ids = List.map (fun (e : Corpus_def.entry) -> e.Corpus_def.e_id) all

(* Shared compile cache: corpus sources are fixed, so every consumer
   (CLI, tests, bench, evaluation) can reuse one compiled unit per
   entry.  Guarded by a mutex — the evaluation campaign calls in from
   worker domains. *)
let compile_mu = Mutex.create ()
let compile_cache : (string, Jir.Code.unit_) Hashtbl.t = Hashtbl.create 16

let compiled_unit (e : Corpus_def.entry) : Jir.Code.unit_ =
  Mutex.lock compile_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock compile_mu)
    (fun () ->
      match Hashtbl.find_opt compile_cache e.Corpus_def.e_id with
      | Some cu -> cu
      | None ->
        (* Compiling inside the lock keeps a racing pair of domains from
           doing the work twice; compilation is fast and deterministic. *)
        let cu = Jir.Compile.compile_source e.Corpus_def.e_source in
        Hashtbl.replace compile_cache e.Corpus_def.e_id cu;
        cu)
