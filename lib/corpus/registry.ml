(* The benchmark registry: the nine classes of Table 3, in order. *)

let all : Corpus_def.entry list =
  [
    C1_write_behind_queue.entry;
    C2_synchronized_collection.entry;
    C3_char_array_writer.entry;
    C4_dynamic_bin.entry;
    C5_double_int_index.entry;
    C6_scanner.entry;
    C7_pooled_executor.entry;
    C8_sequence.entry;
    C9_char_array_reader.entry;
  ]

(* The footnote-5 openjdk wrapper family (races "very similar to
   SynchronizedCollection"); not part of the paper's tables. *)
let extras : Corpus_def.entry list = Openjdk_extras.entries

let find id =
  List.find_opt
    (fun (e : Corpus_def.entry) ->
      String.equal (String.lowercase_ascii e.Corpus_def.e_id)
        (String.lowercase_ascii id))
    (all @ extras)

let ids = List.map (fun (e : Corpus_def.entry) -> e.Corpus_def.e_id) all

(* Shared, string-keyed publish-once caches.

   The steady state is a lock-free read: values are published into an
   immutable map held in an [Atomic], so worker domains on the campaign
   hot path never touch a lock (an earlier version computed *inside* a
   global mutex, and at jobs=4 every domain convoyed on it).  The slow
   path keeps "compute at most once" semantics by claiming an
   in-progress marker under [mu], computing *outside* the lock, and
   publishing under the lock; racing domains wait on the condvar
   instead of recomputing.

   Instantiated here for the per-entry compiled [Jir.Code.unit_]; the
   compiled-code backend instantiates it again for digest-keyed
   machine code (see [Backend.Code_cache]). *)
module SMap = Map.Make (String)

module Keyed_cache (V : sig
  type t
end) =
struct
  type t = {
    published : V.t SMap.t Atomic.t;
    mu : Mutex.t;
    done_ : Condition.t;
    in_progress : (string, unit) Hashtbl.t;
  }

  let create () =
    {
      published = Atomic.make SMap.empty;
      mu = Mutex.create ();
      done_ = Condition.create ();
      in_progress = Hashtbl.create 8;
    }

  let rec find_or_compute t key (compute : unit -> V.t) : V.t =
    match SMap.find_opt key (Atomic.get t.published) with
    | Some v -> v (* lock-free fast path *)
    | None ->
      Mutex.lock t.mu;
      (* Double-check under the lock: a racing domain may have published
         while we were acquiring it. *)
      (match SMap.find_opt key (Atomic.get t.published) with
      | Some v ->
        Mutex.unlock t.mu;
        v
      | None ->
        if Hashtbl.mem t.in_progress key then begin
          (* Another domain is computing this key: wait for any publish
             and retry rather than doing the work twice. *)
          Condition.wait t.done_ t.mu;
          Mutex.unlock t.mu;
          find_or_compute t key compute
        end
        else begin
          Hashtbl.replace t.in_progress key ();
          Mutex.unlock t.mu;
          let v =
            try compute ()
            with exn ->
              Mutex.lock t.mu;
              Hashtbl.remove t.in_progress key;
              Condition.broadcast t.done_;
              Mutex.unlock t.mu;
              raise exn
          in
          Mutex.lock t.mu;
          Hashtbl.remove t.in_progress key;
          (* Writers are serialized by [mu], so a plain store of the
             extended map is enough for readers' Atomic.get. *)
          Atomic.set t.published (SMap.add key v (Atomic.get t.published));
          Condition.broadcast t.done_;
          Mutex.unlock t.mu;
          v
        end)
end

(* Shared compile cache: corpus sources are fixed, so every consumer
   (CLI, tests, bench, evaluation) can reuse one compiled unit per
   entry. *)
module Unit_cache = Keyed_cache (struct
  type t = Jir.Code.unit_
end)

let units = Unit_cache.create ()

let compiled_unit (e : Corpus_def.entry) : Jir.Code.unit_ =
  Unit_cache.find_or_compute units e.Corpus_def.e_id (fun () ->
      Jir.Compile.compile_source e.Corpus_def.e_source)

let warm entries = List.iter (fun e -> ignore (compiled_unit e)) entries

let warm_all () = warm (all @ extras)
