(* The benchmark registry: the nine classes of Table 3, in order. *)

let all : Corpus_def.entry list =
  [
    C1_write_behind_queue.entry;
    C2_synchronized_collection.entry;
    C3_char_array_writer.entry;
    C4_dynamic_bin.entry;
    C5_double_int_index.entry;
    C6_scanner.entry;
    C7_pooled_executor.entry;
    C8_sequence.entry;
    C9_char_array_reader.entry;
  ]

(* The footnote-5 openjdk wrapper family (races "very similar to
   SynchronizedCollection"); not part of the paper's tables. *)
let extras : Corpus_def.entry list = Openjdk_extras.entries

let find id =
  List.find_opt
    (fun (e : Corpus_def.entry) ->
      String.equal (String.lowercase_ascii e.Corpus_def.e_id)
        (String.lowercase_ascii id))
    (all @ extras)

let ids = List.map (fun (e : Corpus_def.entry) -> e.Corpus_def.e_id) all

(* Shared compile cache: corpus sources are fixed, so every consumer
   (CLI, tests, bench, evaluation) can reuse one compiled unit per
   entry.

   The steady state is a lock-free read: compiled units are published
   into an immutable map held in an [Atomic], so worker domains on the
   campaign hot path never touch a lock (the previous version compiled
   *inside* a global mutex, and at jobs=4 every domain convoyed on it).
   The slow path keeps "compile at most once" semantics by claiming an
   in-progress marker under [compile_mu], compiling *outside* the lock,
   and publishing under the lock; racing domains wait on the condvar
   instead of recompiling. *)
module SMap = Map.Make (String)

let published : Jir.Code.unit_ SMap.t Atomic.t = Atomic.make SMap.empty
let compile_mu = Mutex.create ()
let compile_done = Condition.create ()
let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 8

let rec compiled_unit (e : Corpus_def.entry) : Jir.Code.unit_ =
  let id = e.Corpus_def.e_id in
  match SMap.find_opt id (Atomic.get published) with
  | Some cu -> cu (* lock-free fast path *)
  | None ->
    Mutex.lock compile_mu;
    (* Double-check under the lock: a racing domain may have published
       while we were acquiring it. *)
    (match SMap.find_opt id (Atomic.get published) with
    | Some cu ->
      Mutex.unlock compile_mu;
      cu
    | None ->
      if Hashtbl.mem in_progress id then begin
        (* Another domain is compiling this entry: wait for any publish
           and retry rather than doing the work twice. *)
        Condition.wait compile_done compile_mu;
        Mutex.unlock compile_mu;
        compiled_unit e
      end
      else begin
        Hashtbl.replace in_progress id ();
        Mutex.unlock compile_mu;
        let cu =
          try Jir.Compile.compile_source e.Corpus_def.e_source
          with exn ->
            Mutex.lock compile_mu;
            Hashtbl.remove in_progress id;
            Condition.broadcast compile_done;
            Mutex.unlock compile_mu;
            raise exn
        in
        Mutex.lock compile_mu;
        Hashtbl.remove in_progress id;
        (* Writers are serialized by [compile_mu], so a plain store of
           the extended map is enough for readers' Atomic.get. *)
        Atomic.set published (SMap.add id cu (Atomic.get published));
        Condition.broadcast compile_done;
        Mutex.unlock compile_mu;
        cu
      end)

let warm entries = List.iter (fun e -> ignore (compiled_unit e)) entries

let warm_all () = warm (all @ extras)
