(** Shared abstract domain of the static race analyzer: allocation
    sites, lock paths, static access records and racy-pair candidates.

    Everything that reports (aliasing, sharedness, may-happen-in-
    parallel) over-approximates the dynamic semantics; everything that
    suppresses (lock paths) under-approximates.  The Crucible
    static⊇dynamic oracle machine-checks this balance. *)

module Sites : Set.S with type elt = int

type site = int
(** An allocation site, numbered deterministically by the solver. *)

type site_info = {
  si_cls : string;  (** class name, or ["ty[]"] for array sites *)
  si_meth : string;  (** qualified name of the allocating method *)
  si_pos : Jir.Ast.pos;
  si_array : bool;
}

(** A lock (or access base) described by a syntactic path whose value
    cannot change between monitor entry and the guarded access.
    [Lunknown] never matches any lock, including itself. *)
type lpath =
  | Lthis
  | Llocal of string
  | Lglobal of string * string  (** write-once static field [C.f] *)
  | Lunknown

val lpath_to_string : lpath -> string

val equal_lpath : lpath -> lpath -> bool
(** Syntactic path equality; [Lunknown] is equal to nothing. *)

type kind = Kread | Kwrite

val kind_to_string : kind -> string

(** The base of a static access. *)
type base =
  | Binst of Sites.t  (** instance field / array element: may-point-to set *)
  | Bstatic of string  (** static field of the syntactically named class *)

type region_kind = Rsync_method | Rsync_block

(** A synchronized region (sync method body or sync block). *)
type region = {
  rg_id : int;
  rg_qname : string;
  rg_cls : string;
  rg_pos : Jir.Ast.pos;
  rg_kind : region_kind;
}

(** One static field/array access. *)
type acc = {
  sa_id : int;  (** dense walk-order id: deterministic tiebreak *)
  sa_qname : string;  (** enclosing method, as the VM names race sites *)
  sa_cls : string;  (** enclosing class *)
  sa_field : string;  (** ["[]"] for array elements *)
  sa_kind : kind;
  sa_pos : Jir.Ast.pos;
  sa_base : base;
  sa_base_path : lpath;  (** [Lthis]/[Llocal] when the base is such a path *)
  sa_locks : lpath list;  (** locks held, outermost first ([Lunknown] allowed) *)
  sa_regions : int list;  (** enclosing sync region ids, outermost first *)
}

val acc_to_string : acc -> string

val is_init_qname : string -> bool
(** Does the qname denote a constructor or field initializer? *)

(** Escape / thread-sharedness facts consumed by the racy-pair
    generator. *)
type esc = {
  esc_parallel : bool;  (** open world: every method may run concurrently *)
  esc_reachable : (string, unit) Hashtbl.t;  (** spawn-reachable qnames *)
  esc_shared : Sites.t;
}

val esc_reaches : esc -> string -> bool
(** May the method qname execute on a non-main thread? *)

(** A static racy-pair candidate ([cd_a == cd_b] for a self-race). *)
type cand = { cd_field : string; cd_a : acc; cd_b : acc }

val cand_key : field:string -> m1:string -> m2:string -> string * string * string
(** The static identity of a candidate: the field plus the unordered
    pair of enclosing-method qnames — the granularity at which dynamic
    race reports are compared against the static candidate set. *)

val key_of : cand -> string * string * string
val cand_to_string : cand -> string
