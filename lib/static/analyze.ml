(* Driver for the static tier: solve points-to, compute escape
   information, collect accesses, generate candidates, and answer the
   membership queries used by the dynamic-pipeline filter and by the
   Crucible static⊇dynamic oracle. *)

module D = Dom

(* Planted unsoundness, used to validate the Crucible oracle: silently
   drop all accesses inside sync regions before pairing. *)
type mutation = Drop_sync

let mutation_to_string = function Drop_sync -> "static-drop-sync"

type t = {
  pt : Pointsto.t;
  esc : Escape.t;
  accs : D.acc list;
  regions : D.region list;
  cands : D.cand list;
  keys : (string * string * string, unit) Hashtbl.t;
}

let run ?mutate ?(open_world = false) (prog : Jir.Program.t) : t =
  let pt = Pointsto.solve ~open_world prog in
  let esc = Escape.compute ~open_world pt in
  let { Accesses.accs; regions } = Accesses.collect pt in
  let drop_sync = match mutate with Some Drop_sync -> true | None -> false in
  let cands =
    Racepairs.generate ~drop_sync ~exclude_init:open_world esc accs
  in
  let keys = Hashtbl.create 32 in
  List.iter (fun c -> Hashtbl.replace keys (D.key_of c) ()) cands;
  { pt; esc; accs; regions; cands; keys }

let candidates t = t.cands
let accesses t = t.accs
let regions t = t.regions
let escape t = t.esc
let pointsto t = t.pt

(* Is (field, {m1, m2}) covered by some static candidate?  [m1]/[m2]
   are method qnames as the VM names race sites. *)
let covers t ~field ~m1 ~m2 = Hashtbl.mem t.keys (D.cand_key ~field ~m1 ~m2)
