(* Driver for the static tier: summarize each class (or fetch its
   summary from a digest-keyed cache), link the summaries into whole-
   program facts, generate candidates, and answer the membership
   queries used by the dynamic-pipeline filter and the Crucible
   oracles.

   With a cache, cold runs pay one summarization per class and warm
   runs pay only the linking phase; a one-class edit re-summarizes
   exactly the changed class.  Linked results always flow through the
   summary codec (cached or not), so cached and from-scratch analyses
   are literally the same computation — the Crucible incremental
   oracle checks the equivalence end to end. *)

module D = Dom

(* Planted unsoundness, used to validate the Crucible oracles:
   [Drop_sync] silently drops all accesses inside sync regions before
   pairing; [Stale_cache] keys the summary cache by class *name*
   instead of content digest, so a warm analysis after an edit reuses
   the stale summary. *)
type mutation = Drop_sync | Stale_cache

let mutation_to_string = function
  | Drop_sync -> "static-drop-sync"
  | Stale_cache -> "static-stale-cache"

type t = {
  link : Link.t;
  cands : D.cand list;
  keys : (string * string * string, unit) Hashtbl.t Lazy.t;
}

let metrics = Obs.Metrics.global

let summarize_class ?mutate ?cache (c : Jir.Ast.class_decl) : Summary.cls =
  let fresh () =
    Obs.Metrics.incr (metrics ()) "static/summarized";
    Summary.of_class c
  in
  match cache with
  | None -> fresh ()
  | Some cache -> (
    let key =
      match mutate with
      | Some Stale_cache -> c.Jir.Ast.c_name
      | Some Drop_sync | None -> Summary.digest c
    in
    let compute_and_store () =
      let s = fresh () in
      Cache.store cache ~kind:"sum" ~key (Summary.to_string s);
      s
    in
    match Cache.find cache ~kind:"sum" ~key with
    | None -> compute_and_store ()
    | Some payload -> (
      match Summary.of_string payload with
      | Ok s -> s
      | Error _ ->
        (* decodable header but undecodable body: recompute *)
        Cache.evict cache ~kind:"sum" ~key;
        compute_and_store ()))

let run ?mutate ?(open_world = false) ?cache (prog : Jir.Program.t) : t =
  let sums =
    Obs.Span.with_ ~root:true "static/summary" (fun () ->
        List.map (summarize_class ?mutate ?cache) (Jir.Program.classes prog))
  in
  let link, cands =
    Obs.Span.with_ ~root:true "static/link" (fun () ->
        let link = Link.solve ~open_world prog sums in
        let drop_sync = mutate = Some Drop_sync in
        let cands =
          Racepairs.generate ~drop_sync ~exclude_init:open_world (Link.esc link)
            (Link.accs link)
        in
        (link, cands))
  in
  let keys =
    lazy
      (let keys = Hashtbl.create 32 in
       List.iter (fun c -> Hashtbl.replace keys (D.key_of c) ()) cands;
       keys)
  in
  { link; cands; keys }

let candidates t = t.cands
let accesses t = Link.accs t.link
let regions t = Link.regions t.link
let shared t = Link.shared t.link
let prog t = Link.prog t.link
let site_info t s = Link.site_info t.link s
let is_spawn_reachable t qn = D.esc_reaches (Link.esc t.link) qn

(* Is (field, {m1, m2}) covered by some static candidate?  [m1]/[m2]
   are method qnames as the VM names race sites.  The key table is
   built lazily on the first query, so pure candidate consumers (lint)
   never pay for it. *)
let covers t ~field ~m1 ~m2 =
  Hashtbl.mem (Lazy.force t.keys) (D.cand_key ~field ~m1 ~m2)
