(* Shared abstract domain of the static race analyzer: allocation
   sites, lock paths, static access records, sync regions and racy-pair
   candidates.

   Soundness orientation: everything that *reports* (aliasing, thread
   sharedness, may-happen-in-parallel) over-approximates the dynamic
   semantics; everything that *suppresses* (lock paths) under-
   approximates.  The Crucible static⊇dynamic oracle machine-checks
   this on randomly generated programs. *)

module Sites = Set.Make (Int)

type site = int

type site_info = {
  si_cls : string;  (** class name, or ["ty[]"] for array sites *)
  si_meth : string;  (** qualified name of the allocating method *)
  si_pos : Jir.Ast.pos;
  si_array : bool;
}

(* A lock (or access base) described by a syntactic path whose value
   cannot change between monitor entry and the guarded access: [this],
   a single-definition local, or a write-once static field.  Anything
   else is [Lunknown] and never justifies suppressing a pair. *)
type lpath =
  | Lthis
  | Llocal of string
  | Lglobal of string * string  (** write-once static field [C.f] *)
  | Lunknown

let lpath_to_string = function
  | Lthis -> "this"
  | Llocal x -> x
  | Lglobal (c, f) -> c ^ "." ^ f
  | Lunknown -> "?"

let equal_lpath (a : lpath) (b : lpath) =
  match (a, b) with
  | Lthis, Lthis -> true
  | Llocal x, Llocal y -> String.equal x y
  | Lglobal (c1, f1), Lglobal (c2, f2) -> String.equal c1 c2 && String.equal f1 f2
  | Lunknown, Lunknown -> false (* unknown never matches, not even itself *)
  | (Lthis | Llocal _ | Lglobal _ | Lunknown), _ -> false

type kind = Kread | Kwrite

let kind_to_string = function Kread -> "read" | Kwrite -> "write"

(* The base of a static access. *)
type base =
  | Binst of Sites.t  (** instance field / array element: may-point-to set *)
  | Bstatic of string  (** static field of the syntactically named class *)

type region_kind = Rsync_method | Rsync_block

type region = {
  rg_id : int;
  rg_qname : string;
  rg_cls : string;
  rg_pos : Jir.Ast.pos;
  rg_kind : region_kind;
}

type acc = {
  sa_id : int;  (** dense walk-order id: deterministic tiebreak *)
  sa_qname : string;  (** enclosing method, as the VM names race sites *)
  sa_cls : string;  (** enclosing class *)
  sa_field : string;  (** ["[]"] for array elements *)
  sa_kind : kind;
  sa_pos : Jir.Ast.pos;
  sa_base : base;
  sa_base_path : lpath;  (** [Lthis]/[Llocal] when the base is such a path *)
  sa_locks : lpath list;  (** locks held, outermost first ([Lunknown] allowed) *)
  sa_regions : int list;  (** enclosing sync region ids, outermost first *)
}

let acc_to_string (a : acc) =
  Printf.sprintf "%s %s.%s at %s (%d:%d)%s"
    (kind_to_string a.sa_kind)
    (match a.sa_base with Binst _ -> "_" | Bstatic c -> c)
    a.sa_field a.sa_qname a.sa_pos.Jir.Ast.line a.sa_pos.Jir.Ast.col
    (match a.sa_locks with
    | [] -> ""
    | ls -> " locks{" ^ String.concat "," (List.map lpath_to_string ls) ^ "}")

(* Does the qname denote a constructor or field initializer? *)
let is_init_qname qn =
  Filename.check_suffix qn ".<init>" || Filename.check_suffix qn ".<fieldinit>"

(* Escape / thread-sharedness facts consumed by the racy-pair
   generator: spawn-reachable method qnames (or "everything runs in
   parallel" in open-world mode) and the thread-shared site set. *)
type esc = {
  esc_parallel : bool;  (** open world: every method may run concurrently *)
  esc_reachable : (string, unit) Hashtbl.t;  (** spawn-reachable qnames *)
  esc_shared : Sites.t;
}

let esc_reaches e qn = e.esc_parallel || Hashtbl.mem e.esc_reachable qn

type cand = { cd_field : string; cd_a : acc; cd_b : acc }

(* The static identity of a candidate: the field plus the unordered
   pair of enclosing-method qnames — the granularity at which dynamic
   race reports are compared against the static candidate set. *)
let cand_key ~field ~m1 ~m2 =
  if String.compare m1 m2 <= 0 then (field, m1, m2) else (field, m2, m1)

let key_of (c : cand) =
  cand_key ~field:c.cd_field ~m1:c.cd_a.sa_qname ~m2:c.cd_b.sa_qname

let cand_to_string (c : cand) =
  Printf.sprintf "static race candidate on .%s: %s (%d:%d, %s) <-> %s (%d:%d, %s)"
    c.cd_field c.cd_a.sa_qname c.cd_a.sa_pos.Jir.Ast.line
    c.cd_a.sa_pos.Jir.Ast.col
    (kind_to_string c.cd_a.sa_kind)
    c.cd_b.sa_qname c.cd_b.sa_pos.Jir.Ast.line c.cd_b.sa_pos.Jir.Ast.col
    (kind_to_string c.cd_b.sa_kind)
