(* Lock-discipline lint over the static analysis results plus a
   monitor-balance dataflow over compiled bytecode.

   Findings:
   - static race candidates (warning);
   - unguarded writes to fields that are accessed under a lock
     elsewhere (warning; constructor and field-initializer writes are
     exempt — the object is not yet published);
   - dead sync: a synchronized region guarding no thread-shared state
     (warning);
   - monitor imbalance on some bytecode path: a path that returns with
     a monitor held, exits an unheld monitor, or joins two paths at
     different depths (error — the compiler balances monitors on every
     return/break/continue, so any hit here is a real defect).

   All findings are sorted by (span, severity, message), which makes
   lint output deterministic and independent of [--jobs]. *)

open Jir
module D = Dom

type finding = { f_sev : Diag.severity; f_span : Diag.span; f_msg : string }

let compare_finding a b =
  let c = Diag.compare_span a.f_span b.f_span in
  if c <> 0 then c
  else
    let c = Diag.compare_severity a.f_sev b.f_sev in
    if c <> 0 then c else String.compare a.f_msg b.f_msg

let to_string f =
  Printf.sprintf "%s: %s: %s" (Diag.span_to_string f.f_span)
    (Diag.severity_to_string f.f_sev)
    f.f_msg

(* ---- monitor balance over bytecode ---- *)

(* Source position of a compiled method, recovered from the AST. *)
let meth_pos prog (m : Code.meth) : Ast.pos =
  match Program.find_class prog m.Code.cm_cls with
  | None -> Ast.dummy_pos
  | Some c -> (
    match
      List.find_opt
        (fun (d : Ast.method_decl) ->
          String.equal d.m_name m.Code.cm_name
          && List.length d.m_params = m.Code.cm_nparams)
        c.c_methods
    with
    | Some d -> d.m_pos
    | None -> c.c_pos (* synthetic <fieldinit>/<clinit> *))

let monitor_findings ?file prog (cu : Code.unit_) : finding list =
  let out = ref [] in
  let flag (m : Code.meth) msg =
    out :=
      {
        f_sev = Diag.Sev_error;
        f_span = Diag.span ?file (meth_pos prog m);
        f_msg = Printf.sprintf "%s: %s" m.Code.cm_qname msg;
      }
      :: !out
  in
  let check (m : Code.meth) =
    let code = m.Code.cm_code in
    let n = Array.length code in
    let depth = Array.make n (-1) in
    let rec go pc d =
      if pc >= 0 && pc < n then
        if depth.(pc) >= 0 then begin
          if depth.(pc) <> d then
            flag m
              (Printf.sprintf
                 "inconsistent monitor depth at pc %d (%d vs %d)" pc
                 depth.(pc) d)
        end
        else begin
          depth.(pc) <- d;
          match code.(pc) with
          | Code.Ienter _ -> go (pc + 1) (d + 1)
          | Code.Iexit _ ->
            if d = 0 then flag m "monitor exit without a matching enter"
            else go (pc + 1) (d - 1)
          | Code.Iret _ ->
            if d > 0 then
              flag m
                (Printf.sprintf
                   "path reaches a return holding %d monitor%s (lock without \
                    unlock)"
                   d
                   (if d = 1 then "" else "s"))
          | Code.Ithrow _ -> () (* the VM unwinds monitors on crashes *)
          | Code.Ijmp l -> go l d
          | Code.Ibr (_, a, b) ->
            go a d;
            go b d
          | _ -> go (pc + 1) d
        end
    in
    if n > 0 then go 0 0
  in
  let meths (c : Code.cls) =
    Option.to_list c.Code.cc_fieldinit
    @ List.map snd c.Code.cc_ctors
    @ List.map snd c.Code.cc_methods
    @ List.map snd c.Code.cc_static_methods
  in
  Hashtbl.iter
    (fun _ c -> List.iter check (meths c))
    cu.Code.cu_classes;
  !out

(* ---- lock discipline over static accesses ---- *)

(* Identity of the stored field an access touches: the syntactic class
   for statics, the declaring class for instance fields, the array
   type for elements. *)
let field_keys prog (a : D.acc) (an : Analyze.t) : (string * string) list =
  match a.D.sa_base with
  | D.Bstatic c -> [ (c, a.D.sa_field) ]
  | D.Binst sites ->
    D.Sites.fold
      (fun s acc ->
        let info = Analyze.site_info an s in
        let cls =
          if info.D.si_array then info.D.si_cls
          else
            match
              List.find_opt
                (fun (c : Ast.class_decl) ->
                  List.exists
                    (fun (f : Ast.field_decl) ->
                      (not f.f_static) && String.equal f.f_name a.D.sa_field)
                    c.c_fields)
                (Program.ancestors prog info.D.si_cls)
            with
            | Some c -> c.c_name
            | None -> info.D.si_cls
        in
        if List.mem (cls, a.D.sa_field) acc then acc
        else (cls, a.D.sa_field) :: acc)
      sites []

let discipline_findings ?file (an : Analyze.t) : finding list =
  let prog = Analyze.prog an in
  let accs = Analyze.accesses an in
  (* First guarded access per stored field, as the lint witness. *)
  let guarded : (string * string, D.acc) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : D.acc) ->
      if a.D.sa_locks <> [] then
        List.iter
          (fun k ->
            if not (Hashtbl.mem guarded k) then Hashtbl.replace guarded k a)
          (field_keys prog a an))
    accs;
  let unguarded =
    List.concat_map
      (fun (a : D.acc) ->
        if
          a.D.sa_kind = D.Kwrite && a.D.sa_locks = []
          && not (D.is_init_qname a.D.sa_qname)
        then
          List.filter_map
            (fun ((cls, fld) as k) ->
              match Hashtbl.find_opt guarded k with
              | Some w ->
                Some
                  {
                    f_sev = Diag.Sev_warning;
                    f_span = Diag.span ?file a.D.sa_pos;
                    f_msg =
                      Printf.sprintf
                        "write to %s.%s in %s holds no lock, but %s.%s is \
                         accessed under a lock at %s"
                        cls fld a.D.sa_qname cls fld
                        (Diag.span_to_string (Diag.span ?file w.D.sa_pos));
                  }
              | None -> None)
            (field_keys prog a an)
        else [])
      accs
  in
  (* Dead sync: regions under which no access touches shared state. *)
  let shared = Analyze.shared an in
  let touches_shared (a : D.acc) =
    match a.D.sa_base with
    | D.Bstatic _ -> true
    | D.Binst s -> not (D.Sites.is_empty (D.Sites.inter s shared))
  in
  let live : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a : D.acc) ->
      if touches_shared a then
        List.iter (fun r -> Hashtbl.replace live r ()) a.D.sa_regions)
    accs;
  let dead =
    List.filter_map
      (fun (r : D.region) ->
        if Hashtbl.mem live r.D.rg_id then None
        else
          Some
            {
              f_sev = Diag.Sev_warning;
              f_span = Diag.span ?file r.D.rg_pos;
              f_msg =
                (match r.D.rg_kind with
                | D.Rsync_method ->
                  Printf.sprintf
                    "synchronized method %s guards no thread-shared state \
                     (dead sync)"
                    r.D.rg_qname
                | D.Rsync_block ->
                  Printf.sprintf
                    "sync block in %s guards no thread-shared state (dead \
                     sync)"
                    r.D.rg_qname);
            })
      (Analyze.regions an)
  in
  unguarded @ dead

let race_findings ?file (an : Analyze.t) : finding list =
  List.map
    (fun (c : D.cand) ->
      {
        f_sev = Diag.Sev_warning;
        f_span = Diag.span ?file c.D.cd_a.D.sa_pos;
        f_msg = D.cand_to_string c;
      })
    (Analyze.candidates an)

let run ?file (an : Analyze.t) (cu : Code.unit_) : finding list =
  let prog = Analyze.prog an in
  List.sort_uniq compare_finding
    (race_findings ?file an
    @ discipline_findings ?file an
    @ monitor_findings ?file prog cu)

(* ---- whole-unit lint blocks, with the result-level cache tier ---- *)

(* The rendered per-unit output of [narada lint]: findings then a
   one-line footer.  Assembled here so the CLI, the serve daemon and
   the cache all agree on the exact bytes. *)
type block = { bl_text : string; bl_errors : int; bl_warnings : int }

let render_block ~label (findings : finding list) : block =
  let errors, warnings =
    List.fold_left
      (fun (e, w) f ->
        match f.f_sev with
        | Diag.Sev_error -> (e + 1, w)
        | Diag.Sev_warning -> (e, w + 1))
      (0, 0) findings
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (to_string f);
      Buffer.add_char buf '\n')
    findings;
  Buffer.add_string buf
    (Printf.sprintf "%s: %d finding%s (%d error%s, %d warning%s)\n" label
       (errors + warnings)
       (if errors + warnings = 1 then "" else "s")
       errors
       (if errors = 1 then "" else "s")
       warnings
       (if warnings = 1 then "" else "s"));
  { bl_text = Buffer.contents buf; bl_errors = errors; bl_warnings = warnings }

let encode_block b =
  Printf.sprintf "counts %d %d\n%s" b.bl_errors b.bl_warnings b.bl_text

let decode_block payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some i -> (
    let hdr = String.sub payload 0 i in
    let text = String.sub payload (i + 1) (String.length payload - i - 1) in
    match String.split_on_char ' ' hdr with
    | [ "counts"; e; w ] -> (
      match (int_of_string_opt e, int_of_string_opt w) with
      | Some e, Some w -> Some { bl_text = text; bl_errors = e; bl_warnings = w }
      | _ -> None)
    | _ -> None)

(* Lint one unit, via two cache tiers when a cache is given: the whole
   rendered block keyed by (label, source bytes) — a warm re-lint of
   an unchanged unit skips parsing and analysis entirely — and, under
   it, the per-class summary tier inside {!Analyze.run}, so an edited
   unit only re-summarizes its changed classes. *)
let block ?cache ~label ~source ~(compile : unit -> Code.unit_) () : block =
  let key = label ^ "\x00" ^ source in
  let cached =
    match cache with
    | None -> None
    | Some cache -> (
      match Cache.find cache ~kind:"lint" ~key with
      | None -> None
      | Some payload -> (
        match decode_block payload with
        | Some b -> Some b
        | None ->
          Cache.evict cache ~kind:"lint" ~key;
          None))
  in
  match cached with
  | Some b -> b
  | None ->
    let cu = compile () in
    let an = Analyze.run ~open_world:true ?cache cu.Code.cu_program in
    let b = render_block ~label (run ~file:label an cu) in
    Option.iter (fun c -> Cache.store c ~kind:"lint" ~key (encode_block b)) cache;
    b
