(* Versioned store for static-tier artifacts (class summaries and
   whole-unit lint blocks), on disk or in memory.

   Disk layout: a directory holding a [version] file with the schema
   line plus one [<kind>-<md5(key)>.entry] file per entry.  Entries
   start with a header line [narada.staticcache/1 <kind> <key>]; the
   payload is the remaining bytes verbatim.  Writes go through a
   temporary file and [rename], so a crashed writer leaves either the
   old entry or none.  Reads re-verify the header: a truncated,
   mangled or colliding entry is deleted (counted as an eviction) and
   reported as a miss — the caller recomputes and overwrites.  A
   version file from another schema wipes the store.

   Hits/misses/evictions are recorded as [static/cache/*] counters in
   the global registry; they are deterministic for sequential runs
   (parallel units may interleave miss/store on a shared entry). *)

let schema = "narada.staticcache/1"

type backend =
  | Disk of string
  | Mem of (string * string, string) Hashtbl.t * Mutex.t

type t = { be : backend }

let metrics = Obs.Metrics.global

let hit () = Obs.Metrics.incr (metrics ()) "static/cache/hits"
let miss () = Obs.Metrics.incr (metrics ()) "static/cache/misses"
let evicted () = Obs.Metrics.incr (metrics ()) "static/cache/evictions"

let in_memory () = { be = Mem (Hashtbl.create 64, Mutex.create ()) }

let is_entry name = Filename.check_suffix name ".entry"

let wipe_entries dir ~count =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if is_entry name then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          if count then evicted ()
        end)
      names

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let write_atomic path data =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data);
  Sys.rename tmp path

let open_dir dir =
  mkdir_p dir;
  let vfile = Filename.concat dir "version" in
  (match read_file vfile with
  | Some v when String.equal (String.trim v) schema -> ()
  | Some _ ->
    (* another schema generation: every entry is stale *)
    wipe_entries dir ~count:true;
    write_atomic vfile (schema ^ "\n")
  | None ->
    (* fresh dir — or one missing its version marker, whose entries we
       cannot trust *)
    wipe_entries dir ~count:false;
    write_atomic vfile (schema ^ "\n"));
  { be = Disk dir }

let entry_path dir ~kind ~key =
  Filename.concat dir
    (Printf.sprintf "%s-%s.entry" kind (Digest.to_hex (Digest.string key)))

let header ~kind ~key = Printf.sprintf "%s %s %s" schema kind key

let find t ~kind ~key =
  match t.be with
  | Mem (tbl, mu) ->
    Mutex.lock mu;
    let r = Hashtbl.find_opt tbl (kind, key) in
    Mutex.unlock mu;
    (match r with Some _ -> hit () | None -> miss ());
    r
  | Disk dir -> (
    let path = entry_path dir ~kind ~key in
    match read_file path with
    | None ->
      miss ();
      None
    | Some data -> (
      let h = header ~kind ~key in
      let hl = String.length h in
      if
        String.length data > hl
        && String.equal (String.sub data 0 hl) h
        && data.[hl] = '\n'
      then begin
        hit ();
        Some (String.sub data (hl + 1) (String.length data - hl - 1))
      end
      else begin
        (* truncated/corrupt/foreign entry: drop it and recompute *)
        (try Sys.remove path with Sys_error _ -> ());
        evicted ();
        miss ();
        None
      end))

let store t ~kind ~key payload =
  match t.be with
  | Mem (tbl, mu) ->
    Mutex.lock mu;
    Hashtbl.replace tbl (kind, key) payload;
    Mutex.unlock mu
  | Disk dir ->
    let path = entry_path dir ~kind ~key in
    (try write_atomic path (header ~kind ~key ^ "\n" ^ payload)
     with Sys_error _ -> ())

let evict t ~kind ~key =
  (match t.be with
  | Mem (tbl, mu) ->
    Mutex.lock mu;
    Hashtbl.remove tbl (kind, key);
    Mutex.unlock mu
  | Disk dir -> (
    try Sys.remove (entry_path dir ~kind ~key) with Sys_error _ -> ()));
  evicted ()
