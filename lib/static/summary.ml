(* Per-class summaries for the incremental static tier.

   A summary is a pure function of one class declaration: the class's
   method bodies are walked exactly once, in the same fixed
   left-to-right order the old whole-program solver used, and every
   points-to-relevant step is recorded as a symbolic constraint over
   boundary variables ([this]/param/return/static/field slots named by
   qname, plus per-occurrence temporaries).  Nothing in a summary
   depends on any other class: calls stay name-based descriptors,
   [new C] stays a (class, arity) descriptor, and lock paths that
   depend on global write-once facts stay conditional — all of it is
   resolved by the cheap linking phase ({!Link}), which is why editing
   one class never invalidates another class's cached summary.

   The same walk also records access/lock-region templates (mirroring
   the old access collector), call-graph edges and spawn roots/seeds
   for the escape closure, and the statics this class assigns outside
   [<clinit>].

   Summaries serialize to a canonical line-oriented text form
   ({!to_lines}/{!of_lines}); the on-disk cache stores exactly these
   bytes, keyed by {!digest}, a content digest of the class AST
   (structure via the canonical pretty-printer, plus the source
   positions that flow into lint spans). *)

open Jir
module D = Dom

type wkind = Wnormal | Wctor | Wfieldinit | Wclinit

(* One walkable method body of the class: a declared concrete method or
   a synthetic <fieldinit>/<clinit>, body omitted — the constraints
   below already encode everything the link phase needs. *)
type msum = {
  ms_name : string;  (* simple name (<init> for constructors) *)
  ms_qname : string;  (* Cls.name, matching the VM's site naming *)
  ms_kind : wkind;
  ms_sync : bool;
  ms_static : bool;
  ms_params : (string * string) list;  (* (printed type, name) *)
}

(* A points-to variable.  Temps are class-local dense indices; the
   rest are the boundary variables summaries compose over. *)
type var =
  | Vtemp of int
  | Vthis of string  (* qname *)
  | Vret of string  (* qname *)
  | Vlocal of string * string  (* (qname, var) *)
  | Vstatic of string * string  (* (cls, field) *)

(* Symbolic Andersen constraints, in walk order.  Call/new constraints
   carry name-based descriptors resolved at link time. *)
type con =
  | Ccopy of var * var  (* dst ⊇ src *)
  | Cload of var * var * string  (* dst ⊇ base.f (f = "[]" for elems) *)
  | Cstore of var * string * var  (* base.f ⊇ src *)
  | Cnew of int * int * string * int list
      (* (dst temp, local site, class, arg temps): dst = {site}; the
         site flows to [this] of every ctor of matching arity and every
         inherited <fieldinit>; args flow to ctor params *)
  | Cnewarr of int * int  (* (dst temp, local site) *)
  | Cicall of int * int * string * int list
      (* (dst temp, recv temp, name, arg temps): name-based instance
         dispatch; also used for spawn targets *)
  | Cscall of int * string * int list  (* static dispatch by name *)

(* Allocation-site declaration, in walk order; global ids are assigned
   by the linker (per-class concatenation reproduces the old solver's
   first-visit numbering). *)
type sdecl = {
  sd_qname : string;
  sd_cls : string;  (* class name, or "ty[]" for array sites *)
  sd_array : bool;
  sd_pos : Ast.pos;
}

(* Lock-path template: [Aglobal] stays conditional — whether the
   static is write-once is a whole-program fact the linker settles. *)
type alp = Athis | Alocal of string | Aglobal of string * string | Aunknown

type abase = Atemp of int | Astatic of string

(* Access template: everything the old collector recorded, with the
   base's may-point-to set replaced by the temp var of the base
   expression occurrence. *)
type atmpl = {
  at_meth : int;  (* index into [cs_meths] *)
  at_field : string;
  at_kind : D.kind;
  at_pos : Ast.pos;
  at_base : abase;
  at_path : alp;
  at_locks : alp list;  (* outermost first *)
  at_regions : int list;  (* class-local region indices, outermost first *)
}

type rtmpl = { rt_meth : int; rt_kind : D.region_kind; rt_pos : Ast.pos }

(* Out-edge descriptors for the escape call-graph closure. *)
type edge = Einst of string | Estat of string | Enewed of string * int

type cls = {
  cs_name : string;
  cs_meths : msum list;
  cs_ntemps : int;
  cs_cons : con list;
  cs_sites : sdecl list;
  cs_accs : atmpl list;
  cs_regions : rtmpl list;
  cs_edges : (int * edge list) list;  (* per-method out edges *)
  cs_roots : string list;  (* spawn target method names *)
  cs_seeds : int list;  (* temps of spawn receivers/arguments *)
  cs_muts : (string * string) list;  (* statics assigned outside <clinit> *)
}

let qname cls m = cls ^ "." ^ m

(* ---- the walkable-method universe of one class ---- *)

let synth_inits (c : Ast.class_decl) ~static =
  List.filter_map
    (fun (f : Ast.field_decl) ->
      match f.f_init with
      | Some e when Bool.equal f.f_static static ->
        let lv =
          if static then Ast.Lstatic (c.c_name, f.f_name)
          else Ast.Lfield (Ast.mk_expr ~pos:f.f_pos Ast.Ethis, f.f_name)
        in
        Some (Ast.mk_stmt ~pos:f.f_pos (Ast.Sassign (lv, e)))
      | _ -> None)
    c.c_fields

(* Mirrors the old [build_meths], restricted to one class: declared
   concrete methods in order, then synthetic <fieldinit> and <clinit>
   when the class has initialized fields. *)
type wmeth = {
  wm_name : string;
  wm_qname : string;
  wm_kind : wkind;
  wm_sync : bool;
  wm_static : bool;
  wm_params : (Ast.ty * Ast.id) list;
  wm_body : Ast.block;
  wm_pos : Ast.pos;
}

let build_meths (c : Ast.class_decl) : wmeth list =
  if c.c_kind = Ast.Kinterface then []
  else
    let normal =
      List.filter_map
        (fun (m : Ast.method_decl) ->
          if m.m_abstract then None
          else
            Some
              {
                wm_name = m.m_name;
                wm_qname = qname c.c_name m.m_name;
                wm_kind = (if Ast.is_ctor m then Wctor else Wnormal);
                wm_sync = m.m_sync;
                wm_static = m.m_static;
                wm_params = m.m_params;
                wm_body = m.m_body;
                wm_pos = m.m_pos;
              })
        c.c_methods
    in
    let synth name kind static =
      match synth_inits c ~static with
      | [] -> []
      | body ->
        [
          {
            wm_name = name;
            wm_qname = qname c.c_name name;
            wm_kind = kind;
            wm_sync = false;
            wm_static = static;
            wm_params = [];
            wm_body = body;
            wm_pos = c.c_pos;
          };
        ]
    in
    normal
    @ synth Code.fieldinit_name Wfieldinit false
    @ synth "<clinit>" Wclinit true

(* ---- extraction ---- *)

module ExprTbl = Hashtbl.Make (struct
  type t = Ast.expr

  (* Physical identity: both walks below traverse the same AST nodes,
     so [==] identifies occurrences. *)
  let equal = ( == )
  let hash = Hashtbl.hash
end)

type ctx = {
  cls_name : string;
  mutable ntemps : int;
  mutable cons : con list;  (* reversed *)
  mutable sites : sdecl list;  (* reversed *)
  temps : int ExprTbl.t;  (* expr occurrence -> temp *)
}

let fresh ctx =
  let t = ctx.ntemps in
  ctx.ntemps <- t + 1;
  t

let con ctx c = ctx.cons <- c :: ctx.cons

let site ctx ~qn ~cls ~array ~pos =
  let k = List.length ctx.sites in
  ctx.sites <- { sd_qname = qn; sd_cls = cls; sd_array = array; sd_pos = pos } :: ctx.sites;
  k

(* One visit per expression occurrence, in the exact order the old
   solver's [eval] visited subterms — allocation-site numbering and
   temp identity depend on it. *)
let rec walk_expr ctx ~qn (e : Ast.expr) : int =
  let d = fresh ctx in
  ExprTbl.replace ctx.temps e d;
  (match e.Ast.desc with
  | Eint _ | Ebool _ | Estr _ | Enull -> ()
  | Ethis -> con ctx (Ccopy (Vtemp d, Vthis qn))
  | Evar x -> con ctx (Ccopy (Vtemp d, Vlocal (qn, x)))
  | Efield (o, f) ->
    let bo = walk_expr ctx ~qn o in
    con ctx (Cload (Vtemp d, Vtemp bo, f))
  | Estatic_field (c, f) -> con ctx (Ccopy (Vtemp d, Vstatic (c, f)))
  | Eindex (a, i) ->
    let ba = walk_expr ctx ~qn a in
    ignore (walk_expr ctx ~qn i);
    con ctx (Cload (Vtemp d, Vtemp ba, "[]"))
  | Ecall (o, m, args) ->
    let r = walk_expr ctx ~qn o in
    let avs = List.map (walk_expr ctx ~qn) args in
    con ctx (Cicall (d, r, m, avs))
  | Estatic_call (c, m, args) when String.equal c Program.sys_class ->
    let avs = List.map (walk_expr ctx ~qn) args in
    (* Sys.arraycopy copies references elementwise; no intrinsic
       returns an object reference. *)
    if String.equal m "arraycopy" then (
      match avs with
      | [ src; _; dst; _; _ ] ->
        let elems = fresh ctx in
        con ctx (Cload (Vtemp elems, Vtemp src, "[]"));
        con ctx (Cstore (Vtemp dst, "[]", Vtemp elems))
      | _ -> ())
  | Estatic_call (_, m, args) ->
    let avs = List.map (walk_expr ctx ~qn) args in
    con ctx (Cscall (d, m, avs))
  | Enew (cls, args) ->
    (* site numbered before the arguments are walked, like [eval] *)
    let k = site ctx ~qn ~cls ~array:false ~pos:e.Ast.pos in
    let avs = List.map (walk_expr ctx ~qn) args in
    con ctx (Cnew (d, k, cls, avs))
  | Enew_array (ty, n) ->
    ignore (walk_expr ctx ~qn n);
    let k =
      site ctx ~qn ~cls:(Ast.ty_to_string ty ^ "[]") ~array:true ~pos:e.Ast.pos
    in
    con ctx (Cnewarr (d, k))
  | Ebinop (_, a, b) ->
    ignore (walk_expr ctx ~qn a);
    ignore (walk_expr ctx ~qn b)
  | Eunop (_, a) -> ignore (walk_expr ctx ~qn a));
  d

let rec walk_stmt ctx ~qn (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Sdecl (_, x, init) ->
    Option.iter
      (fun e ->
        let t = walk_expr ctx ~qn e in
        con ctx (Ccopy (Vlocal (qn, x), Vtemp t)))
      init
  | Sassign (Lvar x, e) ->
    let t = walk_expr ctx ~qn e in
    con ctx (Ccopy (Vlocal (qn, x), Vtemp t))
  | Sassign (Lfield (o, f), e) ->
    let bo = walk_expr ctx ~qn o in
    let t = walk_expr ctx ~qn e in
    con ctx (Cstore (Vtemp bo, f, Vtemp t))
  | Sassign (Lstatic (c, f), e) ->
    let t = walk_expr ctx ~qn e in
    con ctx (Ccopy (Vstatic (c, f), Vtemp t))
  | Sassign (Lindex (a, i), e) ->
    let ba = walk_expr ctx ~qn a in
    ignore (walk_expr ctx ~qn i);
    let t = walk_expr ctx ~qn e in
    con ctx (Cstore (Vtemp ba, "[]", Vtemp t))
  | Sexpr e -> ignore (walk_expr ctx ~qn e)
  | Sif (c, th, el) ->
    ignore (walk_expr ctx ~qn c);
    walk_block ctx ~qn th;
    walk_block ctx ~qn el
  | Swhile (c, b) ->
    ignore (walk_expr ctx ~qn c);
    walk_block ctx ~qn b
  | Sfor (init, cond, update, b) ->
    Option.iter (walk_stmt ctx ~qn) init;
    Option.iter (fun e -> ignore (walk_expr ctx ~qn e)) cond;
    walk_block ctx ~qn b;
    Option.iter (walk_stmt ctx ~qn) update
  | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
  | Sreturn (Some e) ->
    let t = walk_expr ctx ~qn e in
    con ctx (Ccopy (Vret qn, Vtemp t))
  | Ssync (e, b) ->
    ignore (walk_expr ctx ~qn e);
    walk_block ctx ~qn b
  | Sassert e -> ignore (walk_expr ctx ~qn e)
  | Sspawn (_, recv, m, args) ->
    let r = walk_expr ctx ~qn recv in
    let avs = List.map (walk_expr ctx ~qn) args in
    let d = fresh ctx in
    con ctx (Cicall (d, r, m, avs))
  | Sjoin e -> ignore (walk_expr ctx ~qn e)

and walk_block ctx ~qn b = List.iter (walk_stmt ctx ~qn) b

(* ---- lock-path stability (class-local facts) ---- *)

(* Defs per (qname, var); a path-stable local has exactly one def and
   that def is a parameter or an initialized declaration. *)
let local_defs (meths : wmeth list) =
  let defs : (string * string, int * bool) Hashtbl.t = Hashtbl.create 64 in
  let note qn x ~stable =
    let n =
      match Hashtbl.find_opt defs (qn, x) with Some (n, _) -> n | None -> 0
    in
    Hashtbl.replace defs (qn, x) (n + 1, if n = 0 then stable else false)
  in
  let rec stmt qn (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sdecl (_, x, init) -> note qn x ~stable:(Option.is_some init)
    | Sassign (Lvar x, _) -> note qn x ~stable:false
    | Sassign ((Lfield _ | Lstatic _ | Lindex _), _)
    | Sexpr _ | Sbreak | Scontinue | Sreturn _ | Sassert _ | Sthrow _
    | Sjoin _ ->
      ()
    | Sif (_, a, b) ->
      List.iter (stmt qn) a;
      List.iter (stmt qn) b
    | Swhile (_, b) -> List.iter (stmt qn) b
    | Sfor (init, _, update, b) ->
      Option.iter (stmt qn) init;
      List.iter (stmt qn) b;
      Option.iter (stmt qn) update
    | Ssync (_, b) -> List.iter (stmt qn) b
    | Sspawn (x, _, _, _) -> note qn x ~stable:false
  in
  List.iter
    (fun (w : wmeth) ->
      List.iter (fun (_, p) -> note w.wm_qname p ~stable:true) w.wm_params;
      List.iter (stmt w.wm_qname) w.wm_body)
    meths;
  fun qn x ->
    match Hashtbl.find_opt defs (qn, x) with
    | Some (1, true) -> true
    | _ -> false

(* Statics this class assigns outside a <clinit> body: candidates for
   global-lock demotion, unioned across classes at link time. *)
let assigned_statics (meths : wmeth list) =
  let muts : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sassign (Lstatic (c, f), _) ->
      if not (Hashtbl.mem muts (c, f)) then begin
        Hashtbl.replace muts (c, f) ();
        order := (c, f) :: !order
      end
    | Sdecl _
    | Sassign ((Lvar _ | Lfield _ | Lindex _), _)
    | Sexpr _ | Sbreak | Scontinue | Sreturn _ | Sassert _ | Sthrow _
    | Sspawn _ | Sjoin _ ->
      ()
    | Sif (_, a, b) ->
      List.iter stmt a;
      List.iter stmt b
    | Swhile (_, b) | Ssync (_, b) -> List.iter stmt b
    | Sfor (init, _, update, b) ->
      Option.iter stmt init;
      List.iter stmt b;
      Option.iter stmt update
  in
  List.iter
    (fun (w : wmeth) -> if w.wm_kind <> Wclinit then List.iter stmt w.wm_body)
    meths;
  List.rev !order

(* ---- access / region templates (mirrors the old collector) ---- *)

type actx = {
  single_def : string -> string -> bool;
  temps_of : int ExprTbl.t;
  mutable aout : atmpl list;  (* reversed *)
  mutable rout : rtmpl list;  (* reversed *)
}

let alp_of actx ~qn (e : Ast.expr) : alp =
  match e.Ast.desc with
  | Ethis -> Athis
  | Evar x when actx.single_def qn x -> Alocal x
  | Estatic_field (c, f) -> Aglobal (c, f)  (* write-once settled at link *)
  | _ -> Aunknown

let temp_of actx (e : Ast.expr) =
  match ExprTbl.find_opt actx.temps_of e with
  | Some t -> t
  | None -> invalid_arg "Summary: access base without a recorded temp"

let collect_accs actx ~mi (w : wmeth) =
  let qn = w.wm_qname in
  let emit ~locks ~regions ~kind ~field ~base ~path ~pos =
    actx.aout <-
      {
        at_meth = mi;
        at_field = field;
        at_kind = kind;
        at_pos = pos;
        at_base = base;
        at_path = path;
        at_locks = List.rev locks;
        at_regions = List.rev regions;
      }
      :: actx.aout
  in
  let rec expr ~locks ~regions (e : Ast.expr) =
    match e.Ast.desc with
    | Eint _ | Ebool _ | Estr _ | Enull | Ethis | Evar _ -> ()
    | Efield (o, f) ->
      expr ~locks ~regions o;
      emit ~locks ~regions ~kind:D.Kread ~field:f ~base:(Atemp (temp_of actx o))
        ~path:(alp_of actx ~qn o) ~pos:e.Ast.pos
    | Estatic_field (c, f) ->
      emit ~locks ~regions ~kind:D.Kread ~field:f ~base:(Astatic c)
        ~path:Aunknown ~pos:e.Ast.pos
    | Eindex (a, i) ->
      expr ~locks ~regions a;
      expr ~locks ~regions i;
      emit ~locks ~regions ~kind:D.Kread ~field:"[]"
        ~base:(Atemp (temp_of actx a)) ~path:(alp_of actx ~qn a) ~pos:e.Ast.pos
    | Ecall (o, _, args) ->
      expr ~locks ~regions o;
      List.iter (expr ~locks ~regions) args
    | Estatic_call (c, m, args) ->
      List.iter (expr ~locks ~regions) args;
      if String.equal c Program.sys_class && String.equal m "arraycopy" then (
        match args with
        | [ src; _; dst; _; _ ] ->
          emit ~locks ~regions ~kind:D.Kread ~field:"[]"
            ~base:(Atemp (temp_of actx src)) ~path:(alp_of actx ~qn src)
            ~pos:e.Ast.pos;
          emit ~locks ~regions ~kind:D.Kwrite ~field:"[]"
            ~base:(Atemp (temp_of actx dst)) ~path:(alp_of actx ~qn dst)
            ~pos:e.Ast.pos
        | _ -> ())
    | Enew (_, args) -> List.iter (expr ~locks ~regions) args
    | Enew_array (_, n) -> expr ~locks ~regions n
    | Ebinop (_, a, b) ->
      expr ~locks ~regions a;
      expr ~locks ~regions b
    | Eunop (_, a) -> expr ~locks ~regions a
  in
  let rec stmt ~locks ~regions (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sdecl (_, _, init) -> Option.iter (expr ~locks ~regions) init
    | Sassign (Lvar _, e) -> expr ~locks ~regions e
    | Sassign (Lfield (o, f), e) ->
      expr ~locks ~regions o;
      expr ~locks ~regions e;
      emit ~locks ~regions ~kind:D.Kwrite ~field:f
        ~base:(Atemp (temp_of actx o)) ~path:(alp_of actx ~qn o)
        ~pos:s.Ast.spos
    | Sassign (Lstatic (c, f), e) ->
      expr ~locks ~regions e;
      emit ~locks ~regions ~kind:D.Kwrite ~field:f ~base:(Astatic c)
        ~path:Aunknown ~pos:s.Ast.spos
    | Sassign (Lindex (a, i), e) ->
      expr ~locks ~regions a;
      expr ~locks ~regions i;
      expr ~locks ~regions e;
      emit ~locks ~regions ~kind:D.Kwrite ~field:"[]"
        ~base:(Atemp (temp_of actx a)) ~path:(alp_of actx ~qn a)
        ~pos:s.Ast.spos
    | Sexpr e | Sassert e | Sjoin e -> expr ~locks ~regions e
    | Sif (c, a, b) ->
      expr ~locks ~regions c;
      List.iter (stmt ~locks ~regions) a;
      List.iter (stmt ~locks ~regions) b
    | Swhile (c, b) ->
      expr ~locks ~regions c;
      List.iter (stmt ~locks ~regions) b
    | Sfor (init, cond, update, b) ->
      Option.iter (stmt ~locks ~regions) init;
      Option.iter (expr ~locks ~regions) cond;
      List.iter (stmt ~locks ~regions) b;
      Option.iter (stmt ~locks ~regions) update
    | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
    | Sreturn (Some e) -> expr ~locks ~regions e
    | Ssync (e, b) ->
      expr ~locks ~regions e;
      let rid = List.length actx.rout in
      actx.rout <-
        { rt_meth = mi; rt_kind = D.Rsync_block; rt_pos = s.Ast.spos }
        :: actx.rout;
      let locks = alp_of actx ~qn e :: locks in
      List.iter (stmt ~locks ~regions:(rid :: regions)) b
    | Sspawn (_, recv, _, args) ->
      expr ~locks ~regions recv;
      List.iter (expr ~locks ~regions) args
  in
  let locks, regions =
    if w.wm_sync then begin
      let rid = List.length actx.rout in
      actx.rout <-
        { rt_meth = mi; rt_kind = D.Rsync_method; rt_pos = w.wm_pos }
        :: actx.rout;
      (* A static sync method would lock the class object; the compiler
         rejects those, but stay conservative. *)
      ((if w.wm_static then [ Aunknown ] else [ Athis ]), [ rid ])
    end
    else ([], [])
  in
  List.iter (stmt ~locks ~regions) w.wm_body

(* ---- escape edges, spawn roots and seeds ---- *)

let collect_edges (w : wmeth) : edge list =
  let out = ref [] in
  let rec expr (e : Ast.expr) =
    match e.Ast.desc with
    | Eint _ | Ebool _ | Estr _ | Enull | Ethis | Evar _ | Estatic_field _ -> ()
    | Efield (o, _) | Eunop (_, o) | Enew_array (_, o) -> expr o
    | Eindex (a, b) | Ebinop (_, a, b) ->
      expr a;
      expr b
    | Ecall (o, m, args) ->
      expr o;
      List.iter expr args;
      out := Einst m :: !out
    | Estatic_call (c, m, args) ->
      List.iter expr args;
      if not (String.equal c Program.sys_class) then out := Estat m :: !out
    | Enew (cls, args) ->
      List.iter expr args;
      out := Enewed (cls, List.length args) :: !out
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sdecl (_, _, init) -> Option.iter expr init
    | Sassign (lv, e) ->
      (match lv with
      | Lvar _ | Lstatic _ -> ()
      | Lfield (o, _) -> expr o
      | Lindex (a, i) ->
        expr a;
        expr i);
      expr e
    | Sexpr e | Sassert e | Sjoin e -> expr e
    | Sif (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | Swhile (c, b) ->
      expr c;
      List.iter stmt b
    | Sfor (init, cond, update, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      List.iter stmt b;
      Option.iter stmt update
    | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
    | Sreturn (Some e) -> expr e
    | Ssync (e, b) ->
      expr e;
      List.iter stmt b
    | Sspawn (_, recv, _, args) ->
      (* spawn targets run on a fresh thread: roots, not edges *)
      expr recv;
      List.iter expr args
  in
  List.iter stmt w.wm_body;
  List.rev !out

let collect_spawns (temps : int ExprTbl.t) (w : wmeth) :
    string list * int list =
  let roots = ref [] in
  let seeds = ref [] in
  let temp e =
    match ExprTbl.find_opt temps e with
    | Some t -> t
    | None -> invalid_arg "Summary: spawn operand without a recorded temp"
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sif (_, a, b) ->
      List.iter stmt a;
      List.iter stmt b
    | Swhile (_, b) | Ssync (_, b) -> List.iter stmt b
    | Sfor (init, _, update, b) ->
      Option.iter stmt init;
      List.iter stmt b;
      Option.iter stmt update
    | Sspawn (_, recv, m, args) ->
      roots := m :: !roots;
      seeds := !seeds @ (temp recv :: List.map temp args)
    | Sdecl _ | Sassign _ | Sexpr _ | Sbreak | Scontinue | Sreturn _
    | Sassert _ | Sthrow _ | Sjoin _ ->
      ()
  in
  List.iter stmt w.wm_body;
  (List.rev !roots, !seeds)

(* ---- summarization ---- *)

let of_class (c : Ast.class_decl) : cls =
  let meths = build_meths c in
  let ctx =
    {
      cls_name = c.c_name;
      ntemps = 0;
      cons = [];
      sites = [];
      temps = ExprTbl.create 256;
    }
  in
  List.iter (fun w -> walk_block ctx ~qn:w.wm_qname w.wm_body) meths;
  let actx =
    {
      single_def = local_defs meths;
      temps_of = ctx.temps;
      aout = [];
      rout = [];
    }
  in
  List.iteri
    (fun mi w -> if w.wm_kind <> Wclinit then collect_accs actx ~mi w)
    meths;
  let roots = ref [] and seeds = ref [] in
  List.iter
    (fun w ->
      let r, s = collect_spawns ctx.temps w in
      roots := !roots @ r;
      seeds := !seeds @ s)
    meths;
  {
    cs_name = c.c_name;
    cs_meths =
      List.map
        (fun w ->
          {
            ms_name = w.wm_name;
            ms_qname = w.wm_qname;
            ms_kind = w.wm_kind;
            ms_sync = w.wm_sync;
            ms_static = w.wm_static;
            ms_params =
              List.map (fun (ty, x) -> (Ast.ty_to_string ty, x)) w.wm_params;
          })
        meths;
    cs_ntemps = ctx.ntemps;
    cs_cons = List.rev ctx.cons;
    cs_sites = List.rev ctx.sites;
    cs_accs = List.rev actx.aout;
    cs_regions = List.rev actx.rout;
    cs_edges = List.mapi (fun mi w -> (mi, collect_edges w)) meths;
    cs_roots = !roots;
    cs_seeds = !seeds;
    cs_muts = assigned_statics meths;
  }

(* ---- type strings (params are stored printed; the linker parses
   them back for open-world compatible-site seeding) ---- *)

let rec ty_of_string s : Ast.ty =
  if Filename.check_suffix s "[]" then
    Ast.Tarray (ty_of_string (Filename.chop_suffix s "[]"))
  else
    match s with
    | "int" -> Ast.Tint
    | "bool" -> Ast.Tbool
    | "str" -> Ast.Tstr
    | "void" -> Ast.Tvoid
    | "thread" -> Ast.Tthread
    | c -> Ast.Tclass c

(* ---- content digest ---- *)

(* The cache key: structure and names via the canonical pretty-printer,
   plus every source position (positions flow into lint spans and
   candidate strings, so moving a method must miss the cache even when
   the code is otherwise identical). *)
let digest (c : Ast.class_decl) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "narada.staticsum/1\n";
  Buffer.add_string b (Pretty.class_to_string c);
  Buffer.add_char b '\n';
  let pos (p : Ast.pos) =
    Buffer.add_string b (string_of_int p.Ast.line);
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int p.Ast.col);
    Buffer.add_char b ';'
  in
  let rec expr (e : Ast.expr) =
    pos e.Ast.pos;
    match e.Ast.desc with
    | Eint _ | Ebool _ | Estr _ | Enull | Ethis | Evar _ | Estatic_field _ -> ()
    | Efield (o, _) | Eunop (_, o) | Enew_array (_, o) -> expr o
    | Eindex (x, y) | Ebinop (_, x, y) ->
      expr x;
      expr y
    | Ecall (o, _, args) ->
      expr o;
      List.iter expr args
    | Estatic_call (_, _, args) | Enew (_, args) -> List.iter expr args
  in
  let rec stmt (s : Ast.stmt) =
    pos s.Ast.spos;
    match s.Ast.sdesc with
    | Sdecl (_, _, init) -> Option.iter expr init
    | Sassign (lv, e) ->
      (match lv with
      | Lvar _ | Lstatic _ -> ()
      | Lfield (o, _) -> expr o
      | Lindex (a, i) ->
        expr a;
        expr i);
      expr e
    | Sexpr e | Sassert e | Sjoin e | Sreturn (Some e) -> expr e
    | Sif (c, a, bl) ->
      expr c;
      List.iter stmt a;
      List.iter stmt bl
    | Swhile (c, bl) | Ssync (c, bl) ->
      expr c;
      List.iter stmt bl
    | Sfor (init, cond, update, bl) ->
      Option.iter stmt init;
      Option.iter expr cond;
      List.iter stmt bl;
      Option.iter stmt update
    | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
    | Sspawn (_, recv, _, args) ->
      expr recv;
      List.iter expr args
  in
  pos c.c_pos;
  List.iter
    (fun (f : Ast.field_decl) ->
      pos f.f_pos;
      Option.iter expr f.f_init)
    c.c_fields;
  List.iter
    (fun (m : Ast.method_decl) ->
      pos m.m_pos;
      List.iter stmt m.m_body)
    c.c_methods;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- canonical text codec ---- *)

let schema = "narada.staticsum/1"

let wkind_to_string = function
  | Wnormal -> "n"
  | Wctor -> "c"
  | Wfieldinit -> "f"
  | Wclinit -> "s"

let wkind_of_string = function
  | "n" -> Some Wnormal
  | "c" -> Some Wctor
  | "f" -> Some Wfieldinit
  | "s" -> Some Wclinit
  | _ -> None

let var_to_string = function
  | Vtemp k -> "t" ^ string_of_int k
  | Vthis qn -> "T!" ^ qn
  | Vret qn -> "R!" ^ qn
  | Vlocal (qn, x) -> "L!" ^ qn ^ "!" ^ x
  | Vstatic (c, f) -> "S!" ^ c ^ "!" ^ f

let var_of_string s : var option =
  match String.split_on_char '!' s with
  | [ t ] when String.length t > 1 && t.[0] = 't' ->
    int_of_string_opt (String.sub t 1 (String.length t - 1))
    |> Option.map (fun k -> Vtemp k)
  | [ "T"; qn ] -> Some (Vthis qn)
  | [ "R"; qn ] -> Some (Vret qn)
  | [ "L"; qn; x ] -> Some (Vlocal (qn, x))
  | [ "S"; c; f ] -> Some (Vstatic (c, f))
  | _ -> None

let alp_to_string = function
  | Athis -> "T"
  | Alocal x -> "L!" ^ x
  | Aglobal (c, f) -> "G!" ^ c ^ "!" ^ f
  | Aunknown -> "U"

let alp_of_string s : alp option =
  match String.split_on_char '!' s with
  | [ "T" ] -> Some Athis
  | [ "L"; x ] -> Some (Alocal x)
  | [ "G"; c; f ] -> Some (Aglobal (c, f))
  | [ "U" ] -> Some Aunknown
  | _ -> None

let ints_to_string = function
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let ints_of_string = function
  | "-" -> Some []
  | s ->
    let parts = String.split_on_char ',' s in
    let parsed = List.filter_map int_of_string_opt parts in
    if List.length parsed = List.length parts then Some parsed else None

let pos_to_string (p : Ast.pos) =
  string_of_int p.Ast.line ^ " " ^ string_of_int p.Ast.col

let to_lines (s : cls) : string list =
  let out = ref [] in
  let line l = out := l :: !out in
  line schema;
  line (Printf.sprintf "class %s %d" s.cs_name s.cs_ntemps);
  List.iter
    (fun m ->
      line
        (Printf.sprintf "meth %s %s %s %d %d %s" m.ms_name m.ms_qname
           (wkind_to_string m.ms_kind)
           (if m.ms_sync then 1 else 0)
           (if m.ms_static then 1 else 0)
           (match m.ms_params with
           | [] -> "-"
           | ps ->
             String.concat ","
               (List.map (fun (ty, x) -> ty ^ "!" ^ x) ps))))
    s.cs_meths;
  List.iter
    (fun d ->
      line
        (Printf.sprintf "site %s %s %d %s" d.sd_qname d.sd_cls
           (if d.sd_array then 1 else 0)
           (pos_to_string d.sd_pos)))
    s.cs_sites;
  List.iter
    (fun c ->
      line
        (match c with
        | Ccopy (d, src) ->
          Printf.sprintf "con copy %s %s" (var_to_string d) (var_to_string src)
        | Cload (d, b, f) ->
          Printf.sprintf "con load %s %s %s" (var_to_string d)
            (var_to_string b) f
        | Cstore (b, f, src) ->
          Printf.sprintf "con store %s %s %s" (var_to_string b) f
            (var_to_string src)
        | Cnew (d, k, cls, args) ->
          Printf.sprintf "con new %d %d %s %s" d k cls (ints_to_string args)
        | Cnewarr (d, k) -> Printf.sprintf "con newarr %d %d" d k
        | Cicall (d, r, m, args) ->
          Printf.sprintf "con icall %d %d %s %s" d r m (ints_to_string args)
        | Cscall (d, m, args) ->
          Printf.sprintf "con scall %d %s %s" d m (ints_to_string args)))
    s.cs_cons;
  List.iter
    (fun a ->
      line
        (Printf.sprintf "acc %d %s %s %s %s %s %s %s" a.at_meth a.at_field
           (match a.at_kind with D.Kread -> "r" | D.Kwrite -> "w")
           (pos_to_string a.at_pos)
           (match a.at_base with
           | Atemp k -> "t" ^ string_of_int k
           | Astatic c -> "S!" ^ c)
           (alp_to_string a.at_path)
           (match a.at_locks with
           | [] -> "-"
           | ls -> String.concat "," (List.map alp_to_string ls))
           (ints_to_string a.at_regions)))
    s.cs_accs;
  List.iter
    (fun r ->
      line
        (Printf.sprintf "region %d %s %s" r.rt_meth
           (match r.rt_kind with D.Rsync_method -> "m" | D.Rsync_block -> "b")
           (pos_to_string r.rt_pos)))
    s.cs_regions;
  List.iter
    (fun (mi, edges) ->
      line
        (Printf.sprintf "edges %d %s" mi
           (match edges with
           | [] -> "-"
           | es ->
             String.concat ","
               (List.map
                  (function
                    | Einst m -> "i!" ^ m
                    | Estat m -> "s!" ^ m
                    | Enewed (c, n) -> "n!" ^ c ^ "!" ^ string_of_int n)
                  es))))
    s.cs_edges;
  List.iter (fun r -> line ("root " ^ r)) s.cs_roots;
  List.iter (fun k -> line ("seed " ^ string_of_int k)) s.cs_seeds;
  List.iter (fun (c, f) -> line (Printf.sprintf "mut %s %s" c f)) s.cs_muts;
  List.rev !out

let of_lines (lines : string list) : (cls, string) result =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match lines with
  | hdr :: rest when String.equal hdr schema -> (
    let name = ref None in
    let ntemps = ref 0 in
    let meths = ref [] in
    let sites = ref [] in
    let cons = ref [] in
    let accs = ref [] in
    let regions = ref [] in
    let edges = ref [] in
    let roots = ref [] in
    let seeds = ref [] in
    let muts = ref [] in
    let err = ref None in
    let bad l = if !err = None then err := Some ("bad summary line: " ^ l) in
    let parse_pos l a b =
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some line, Some col -> Some { Ast.line; col }
      | _ ->
        bad l;
        None
    in
    List.iter
      (fun l ->
        if !err = None then
          match String.split_on_char ' ' l with
          | [ "class"; n; t ] -> (
            name := Some n;
            match int_of_string_opt t with
            | Some t -> ntemps := t
            | None -> bad l)
          | [ "meth"; mn; qn; k; sy; st; ps ] -> (
            match (wkind_of_string k, int_of_string_opt sy, int_of_string_opt st) with
            | Some kind, Some sy, Some st ->
              let params =
                if String.equal ps "-" then Some []
                else
                  let parts = String.split_on_char ',' ps in
                  let parsed =
                    List.filter_map
                      (fun p ->
                        match String.split_on_char '!' p with
                        | [ ty; x ] -> Some (ty, x)
                        | _ -> None)
                      parts
                  in
                  if List.length parsed = List.length parts then Some parsed
                  else None
              in
              (match params with
              | Some params ->
                meths :=
                  {
                    ms_name = mn;
                    ms_qname = qn;
                    ms_kind = kind;
                    ms_sync = sy = 1;
                    ms_static = st = 1;
                    ms_params = params;
                  }
                  :: !meths
              | None -> bad l)
            | _ -> bad l)
          | [ "site"; qn; cls; arr; a; b ] -> (
            match (int_of_string_opt arr, parse_pos l a b) with
            | Some arr, Some pos ->
              sites :=
                { sd_qname = qn; sd_cls = cls; sd_array = arr = 1; sd_pos = pos }
                :: !sites
            | _ -> bad l)
          | "con" :: c -> (
            let v = var_of_string in
            match c with
            | [ "copy"; d; s ] -> (
              match (v d, v s) with
              | Some d, Some s -> cons := Ccopy (d, s) :: !cons
              | _ -> bad l)
            | [ "load"; d; b; f ] -> (
              match (v d, v b) with
              | Some d, Some b -> cons := Cload (d, b, f) :: !cons
              | _ -> bad l)
            | [ "store"; b; f; s ] -> (
              match (v b, v s) with
              | Some b, Some s -> cons := Cstore (b, f, s) :: !cons
              | _ -> bad l)
            | [ "new"; d; k; cls; args ] -> (
              match (int_of_string_opt d, int_of_string_opt k, ints_of_string args) with
              | Some d, Some k, Some args -> cons := Cnew (d, k, cls, args) :: !cons
              | _ -> bad l)
            | [ "newarr"; d; k ] -> (
              match (int_of_string_opt d, int_of_string_opt k) with
              | Some d, Some k -> cons := Cnewarr (d, k) :: !cons
              | _ -> bad l)
            | [ "icall"; d; r; m; args ] -> (
              match
                (int_of_string_opt d, int_of_string_opt r, ints_of_string args)
              with
              | Some d, Some r, Some args -> cons := Cicall (d, r, m, args) :: !cons
              | _ -> bad l)
            | [ "scall"; d; m; args ] -> (
              match (int_of_string_opt d, ints_of_string args) with
              | Some d, Some args -> cons := Cscall (d, m, args) :: !cons
              | _ -> bad l)
            | _ -> bad l)
          | [ "acc"; mi; field; k; a; b; base; path; locks; regs ] -> (
            let kind =
              match k with
              | "r" -> Some D.Kread
              | "w" -> Some D.Kwrite
              | _ -> None
            in
            let base =
              if String.length base > 1 && base.[0] = 't' then
                int_of_string_opt (String.sub base 1 (String.length base - 1))
                |> Option.map (fun k -> Atemp k)
              else
                match String.split_on_char '!' base with
                | [ "S"; c ] -> Some (Astatic c)
                | _ -> None
            in
            let locks =
              if String.equal locks "-" then Some []
              else
                let parts = String.split_on_char ',' locks in
                let parsed = List.filter_map alp_of_string parts in
                if List.length parsed = List.length parts then Some parsed
                else None
            in
            match
              ( int_of_string_opt mi,
                kind,
                parse_pos l a b,
                base,
                alp_of_string path,
                locks,
                ints_of_string regs )
            with
            | Some mi, Some kind, Some pos, Some base, Some path, Some locks, Some regs
              ->
              accs :=
                {
                  at_meth = mi;
                  at_field = field;
                  at_kind = kind;
                  at_pos = pos;
                  at_base = base;
                  at_path = path;
                  at_locks = locks;
                  at_regions = regs;
                }
                :: !accs
            | _ -> bad l)
          | [ "region"; mi; k; a; b ] -> (
            let kind =
              match k with
              | "m" -> Some D.Rsync_method
              | "b" -> Some D.Rsync_block
              | _ -> None
            in
            match (int_of_string_opt mi, kind, parse_pos l a b) with
            | Some mi, Some kind, Some pos ->
              regions := { rt_meth = mi; rt_kind = kind; rt_pos = pos } :: !regions
            | _ -> bad l)
          | [ "edges"; mi; es ] -> (
            let parsed =
              if String.equal es "-" then Some []
              else
                let parts = String.split_on_char ',' es in
                let p =
                  List.filter_map
                    (fun e ->
                      match String.split_on_char '!' e with
                      | [ "i"; m ] -> Some (Einst m)
                      | [ "s"; m ] -> Some (Estat m)
                      | [ "n"; c; n ] ->
                        int_of_string_opt n |> Option.map (fun n -> Enewed (c, n))
                      | _ -> None)
                    parts
                in
                if List.length p = List.length parts then Some p else None
            in
            match (int_of_string_opt mi, parsed) with
            | Some mi, Some es -> edges := (mi, es) :: !edges
            | _ -> bad l)
          | [ "root"; r ] -> roots := r :: !roots
          | [ "seed"; k ] -> (
            match int_of_string_opt k with
            | Some k -> seeds := k :: !seeds
            | None -> bad l)
          | [ "mut"; c; f ] -> muts := (c, f) :: !muts
          | _ -> bad l)
      rest;
    match (!err, !name) with
    | Some msg, _ -> Error msg
    | None, None -> Error "summary missing class line"
    | None, Some name ->
      Ok
        {
          cs_name = name;
          cs_meths = List.rev !meths;
          cs_ntemps = !ntemps;
          cs_cons = List.rev !cons;
          cs_sites = List.rev !sites;
          cs_accs = List.rev !accs;
          cs_regions = List.rev !regions;
          cs_edges = List.rev !edges;
          cs_roots = List.rev !roots;
          cs_seeds = List.rev !seeds;
          cs_muts = List.rev !muts;
        })
  | hdr :: _ -> fail "unknown summary schema %S (want %s)" hdr schema
  | [] -> Error "empty summary"

let to_string s = String.concat "\n" (to_lines s)
let of_string s = of_lines (String.split_on_char '\n' s)
