(** Versioned store for static-tier artifacts (class summaries, lint
    blocks), on disk ([narada.staticcache/1] directory layout with
    atomic writes and corrupt-entry recovery) or in memory.

    Lookups and stores are keyed by an entry [kind] (e.g. ["sum"],
    ["lint"]) and an opaque [key] (normally a content digest).  A
    corrupt, truncated or schema-stale entry is deleted and reported
    as a miss; callers recompute and overwrite.  Hits, misses and
    evictions are recorded as [static/cache/{hits,misses,evictions}]
    counters in the global registry. *)

type t

val schema : string
(** ["narada.staticcache/1"] — version-file contents and entry-header
    prefix. *)

val open_dir : string -> t
(** Open (creating if needed) an on-disk store.  A directory carrying
    a different schema version is wiped; entries without a version
    marker are discarded. *)

val in_memory : unit -> t
(** A process-local store with the same semantics (used by the serve
    daemon tests and the Crucible incremental oracle). *)

val find : t -> kind:string -> key:string -> string option
(** Payload bytes, or [None] on miss (including corrupt entries, which
    are evicted on the way). *)

val store : t -> kind:string -> key:string -> string -> unit
(** Atomically (re)write an entry. *)

val evict : t -> kind:string -> key:string -> unit
(** Drop an entry the caller found to be undecodable. *)
