(* Escape / thread-sharedness analysis seeded from [spawn] sites.

   Two over-approximations, both consumed by the racy-pair generator:

   - [spawn_reachable]: the set of method qnames that may execute on a
     *non-main* thread — the name-based call-graph closure from every
     spawn target in the program.  Every dynamic race has at least one
     endpoint on a spawned thread, so requiring one spawn-reachable
     endpoint per candidate is a sound may-happen-in-parallel rule.

   - [shared]: allocation sites that may be reachable by more than one
     thread — everything a spawn receiver or spawn argument may point
     to, plus every static-field value, closed under field (and array
     element) reachability. *)

open Jir
module D = Dom

type t = {
  spawn_reachable : (string, unit) Hashtbl.t;  (* qnames *)
  all_parallel : bool;  (* open world: every method may run concurrently *)
  shared : D.Sites.t;
}

let is_spawn_reachable t qn = t.all_parallel || Hashtbl.mem t.spawn_reachable qn

let shared t = t.shared

(* Out-edges of a method body under name-based dispatch: callees of
   every call expression, plus constructors and field initializers of
   every [new].  Spawn targets are *not* edges — they run on a fresh
   thread and are roots of the closure themselves. *)
let edges (pt : Pointsto.t) (w : Pointsto.wmeth) : string list =
  let out = ref [] in
  let target ws = List.iter (fun (x : Pointsto.wmeth) -> out := x.wm_qname :: !out) ws in
  let rec expr (e : Ast.expr) =
    match e.Ast.desc with
    | Eint _ | Ebool _ | Estr _ | Enull | Ethis | Evar _ | Estatic_field _ -> ()
    | Efield (o, _) | Eunop (_, o) | Enew_array (_, o) -> expr o
    | Eindex (a, b) | Ebinop (_, a, b) ->
      expr a;
      expr b
    | Ecall (o, m, args) ->
      expr o;
      List.iter expr args;
      target (Pointsto.instance_targets pt m)
    | Estatic_call (c, m, args) ->
      List.iter expr args;
      if not (String.equal c Program.sys_class) then
        target (Pointsto.static_targets pt m)
    | Enew (cls, args) ->
      List.iter expr args;
      target (Pointsto.ctor_targets pt cls ~arity:(List.length args));
      target (Pointsto.fieldinit_targets pt cls)
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sdecl (_, _, init) -> Option.iter expr init
    | Sassign (lv, e) ->
      (match lv with
      | Lvar _ | Lstatic _ -> ()
      | Lfield (o, _) -> expr o
      | Lindex (a, i) ->
        expr a;
        expr i);
      expr e
    | Sexpr e | Sassert e | Sjoin e -> expr e
    | Sif (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | Swhile (c, b) ->
      expr c;
      List.iter stmt b
    | Sfor (init, cond, update, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      List.iter stmt b;
      Option.iter stmt update
    | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
    | Sreturn (Some e) -> expr e
    | Ssync (e, b) ->
      expr e;
      List.iter stmt b
    | Sspawn (_, recv, _, args) ->
      expr recv;
      List.iter expr args
  in
  List.iter stmt w.wm_body;
  !out

(* Spawn roots and shared seeds: walk every body once collecting spawn
   targets and the points-to of spawn receivers/arguments (memoized
   results from the solver's final pass). *)
let spawn_seeds (pt : Pointsto.t) : string list * D.Sites.t =
  let roots = ref [] in
  let seeds = ref D.Sites.empty in
  let rec expr (e : Ast.expr) =
    match e.Ast.desc with
    | Eint _ | Ebool _ | Estr _ | Enull | Ethis | Evar _ | Estatic_field _ -> ()
    | Efield (o, _) | Eunop (_, o) | Enew_array (_, o) -> expr o
    | Eindex (a, b) | Ebinop (_, a, b) ->
      expr a;
      expr b
    | Ecall (o, _, args) ->
      expr o;
      List.iter expr args
    | Estatic_call (_, _, args) | Enew (_, args) -> List.iter expr args
  in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sdecl (_, _, init) -> Option.iter expr init
    | Sassign (lv, e) ->
      (match lv with
      | Lvar _ | Lstatic _ -> ()
      | Lfield (o, _) -> expr o
      | Lindex (a, i) ->
        expr a;
        expr i);
      expr e
    | Sexpr e | Sassert e | Sjoin e -> expr e
    | Sif (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | Swhile (c, b) ->
      expr c;
      List.iter stmt b
    | Sfor (init, cond, update, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      List.iter stmt b;
      Option.iter stmt update
    | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
    | Sreturn (Some e) -> expr e
    | Ssync (e, b) ->
      expr e;
      List.iter stmt b
    | Sspawn (_, recv, m, args) ->
      expr recv;
      List.iter expr args;
      List.iter
        (fun (w : Pointsto.wmeth) -> roots := w.wm_qname :: !roots)
        (Pointsto.instance_targets pt m);
      seeds := D.Sites.union !seeds (Pointsto.pts_of_expr pt recv);
      List.iter
        (fun a -> seeds := D.Sites.union !seeds (Pointsto.pts_of_expr pt a))
        args
  in
  List.iter
    (fun (w : Pointsto.wmeth) -> List.iter stmt w.wm_body)
    (Pointsto.meths pt);
  (!roots, !seeds)

let compute ?(open_world = false) (pt : Pointsto.t) : t =
  if open_world then
    (* Library mode: the unit is a set of classes whose methods an
       unknown multithreaded client may invoke concurrently on shared
       objects.  Every method may run in parallel and every allocation
       may be shared; candidate suppression then rests solely on lock
       discipline, which stays sound. *)
    {
      spawn_reachable = Hashtbl.create 1;
      all_parallel = true;
      shared = Pointsto.all_sites pt;
    }
  else
  let roots, seeds = spawn_seeds pt in
  (* Call-graph closure from spawn targets. *)
  let edge_map : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (w : Pointsto.wmeth) ->
      let prev =
        match Hashtbl.find_opt edge_map w.wm_qname with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace edge_map w.wm_qname (prev @ edges pt w))
    (Pointsto.meths pt);
  let spawn_reachable = Hashtbl.create 32 in
  let rec reach qn =
    if not (Hashtbl.mem spawn_reachable qn) then begin
      Hashtbl.add spawn_reachable qn ();
      match Hashtbl.find_opt edge_map qn with
      | Some succs -> List.iter reach succs
      | None -> ()
    end
  in
  List.iter reach roots;
  let all_parallel = false in
  (* Shared sites: seeds ∪ static-field values, closed under field
     reachability. *)
  let shared = ref D.Sites.empty in
  let work = ref (D.Sites.union seeds (Pointsto.static_values pt)) in
  while not (D.Sites.is_empty !work) do
    let s = D.Sites.min_elt !work in
    work := D.Sites.remove s !work;
    if not (D.Sites.mem s !shared) then begin
      shared := D.Sites.add s !shared;
      List.iter
        (fun (_, v) -> work := D.Sites.union !work (D.Sites.diff v !shared))
        (Pointsto.fields_of_site pt s)
    end
  done;
  { spawn_reachable; all_parallel; shared = !shared }
