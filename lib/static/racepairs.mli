(** Static racy-pair generation: conflicting accesses to a may-aliased
    field where at least one side is spawn-reachable and the two sides
    hold no common lock.  A write may also race with itself (two
    threads executing the same statement). *)

val generate :
  ?drop_sync:bool ->
  ?exclude_init:bool ->
  Dom.esc ->
  Dom.acc list ->
  Dom.cand list
(** Candidates in deterministic discovery order, deduplicated by
    {!Dom.key_of}.  [~drop_sync:true] is the planted unsoundness used
    to validate the Crucible static⊇dynamic oracle: accesses inside
    sync regions are discarded before pairing.  [~exclude_init:true]
    discards constructor/field-initializer accesses, mirroring the
    dynamic pair generator (used by the open-world mode). *)

val common_lock : Dom.acc -> Dom.acc -> bool
(** Do the two accesses certainly hold a common lock on any execution
    where their bases alias?  Recognizes both-self-locked and a shared
    write-once global. *)
