(* Static racy-pair generation: conflicting accesses to a may-aliased
   field where at least one side is spawn-reachable and the two sides
   hold no common lock.

   A pair of accesses (a, b) is a candidate iff
   - at least one of them is a write;
   - they name the same field and their bases may alias on a
     thread-shared object (instance bases: points-to sets intersect
     within the shared-site set; static bases: same syntactic class);
   - at least one endpoint is spawn-reachable (every dynamic race has
     an endpoint on a spawned thread);
   - they are not ordered by a common lock.  Only two certain forms of
     common lock are recognized: both sides self-locked (each holds the
     monitor of its own access base, and a race implies the bases are
     the same object), or both holding the same write-once global.

   A write may also race with *itself* (two threads executing the same
   statement); those single-access candidates are suppressed only when
   the access is self-locked or holds some global lock.

   [~drop_sync] is the planted unsoundness used to validate the
   Crucible static⊇dynamic oracle: it silently discards accesses that
   sit inside any sync region before pairing, losing candidates for
   racy accesses that happen to be (insufficiently) locked. *)

module D = Dom

let self_locked (a : D.acc) =
  match a.D.sa_base_path with
  | (D.Lthis | D.Llocal _) as p ->
    List.exists (fun l -> D.equal_lpath l p) a.D.sa_locks
  | D.Lglobal _ | D.Lunknown -> false

let globals (a : D.acc) =
  List.filter (function D.Lglobal _ -> true | _ -> false) a.D.sa_locks

let common_lock (a : D.acc) (b : D.acc) =
  (self_locked a && self_locked b)
  || List.exists
       (fun g -> List.exists (fun l -> D.equal_lpath l g) b.D.sa_locks)
       (globals a)

let may_alias ~shared (a : D.acc) (b : D.acc) =
  match (a.D.sa_base, b.D.sa_base) with
  | D.Binst sa, D.Binst sb ->
    not (D.Sites.is_empty (D.Sites.inter (D.Sites.inter sa sb) shared))
  | D.Bstatic c1, D.Bstatic c2 -> String.equal c1 c2
  | (D.Binst _ | D.Bstatic _), _ -> false

let shares ~shared (a : D.acc) =
  match a.D.sa_base with
  | D.Binst s -> not (D.Sites.is_empty (D.Sites.inter s shared))
  | D.Bstatic _ -> true

let generate ?(drop_sync = false) ?(exclude_init = false) (esc : D.esc)
    (accs : D.acc list) : D.cand list =
  let shared = esc.D.esc_shared in
  let accs =
    if drop_sync then List.filter (fun a -> a.D.sa_regions = []) accs
    else accs
  in
  (* Open-world callers discard constructor/field-initializer accesses,
     mirroring the dynamic pair generator (§4): construction happens
     before the object is shared.  The closed-world oracle keeps them —
     a constructor can leak [this]. *)
  let accs =
    if exclude_init then
      List.filter (fun a -> not (D.is_init_qname a.D.sa_qname)) accs
    else accs
  in
  let mhp (a : D.acc) (b : D.acc) =
    D.esc_reaches esc a.D.sa_qname || D.esc_reaches esc b.D.sa_qname
  in
  let arr = Array.of_list accs in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let push c =
    let k = D.key_of c in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out := c :: !out
    end
  in
  Array.iter
    (fun (w : D.acc) ->
      if w.D.sa_kind = D.Kwrite then begin
        (* Self-race: two threads executing this same write. *)
        if
          mhp w w && shares ~shared w
          && (not (self_locked w))
          && globals w = []
        then push { D.cd_field = w.D.sa_field; cd_a = w; cd_b = w };
        Array.iter
          (fun (o : D.acc) ->
            if
              o.D.sa_id <> w.D.sa_id
              && String.equal o.D.sa_field w.D.sa_field
              && may_alias ~shared w o && mhp w o
              && not (common_lock w o)
            then
              (* Canonical orientation: lower walk id first. *)
              let a, b = if w.D.sa_id < o.D.sa_id then (w, o) else (o, w) in
              push { D.cd_field = w.D.sa_field; cd_a = a; cd_b = b })
          arr
      end)
    arr;
  List.rev !out
