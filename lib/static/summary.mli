(** Per-class summaries for the incremental static tier.

    A summary is a pure function of one class declaration: method
    bodies are walked once in the solver's canonical order and every
    points-to-relevant step becomes a symbolic constraint over boundary
    variables (this/param/return/static/field slots named by qname plus
    per-occurrence temporaries).  Calls stay name-based descriptors and
    conditional lock paths stay symbolic, so a summary never depends on
    any other class — editing one class cannot invalidate another's
    cached summary.  The cheap linking phase ({!Link}) composes
    summaries back into exactly the whole-program facts the old
    monolithic solver computed. *)

open Jir

type wkind = Wnormal | Wctor | Wfieldinit | Wclinit

(** One walkable method of the class (declared concrete method or
    synthetic [<fieldinit>]/[<clinit>]). *)
type msum = {
  ms_name : string;
  ms_qname : string;
  ms_kind : wkind;
  ms_sync : bool;
  ms_static : bool;
  ms_params : (string * string) list;  (** (printed type, name) *)
}

(** A points-to variable: class-local temp, or a boundary slot. *)
type var =
  | Vtemp of int
  | Vthis of string
  | Vret of string
  | Vlocal of string * string  (** (qname, var) *)
  | Vstatic of string * string  (** (cls, field) *)

(** Symbolic Andersen constraints in walk order; call/new constraints
    carry name-based descriptors resolved at link time. *)
type con =
  | Ccopy of var * var
  | Cload of var * var * string
  | Cstore of var * string * var
  | Cnew of int * int * string * int list
      (** (dst temp, local site, class, arg temps) *)
  | Cnewarr of int * int
  | Cicall of int * int * string * int list
  | Cscall of int * string * int list

(** Allocation-site declaration in walk order; global ids are assigned
    at link by per-class concatenation. *)
type sdecl = {
  sd_qname : string;
  sd_cls : string;
  sd_array : bool;
  sd_pos : Ast.pos;
}

(** Lock-path template; [Aglobal] is conditional on the whole-program
    write-once fact settled at link. *)
type alp = Athis | Alocal of string | Aglobal of string * string | Aunknown

type abase = Atemp of int | Astatic of string

(** Access template: the old collector's record with may-point-to sets
    replaced by base-expression temps. *)
type atmpl = {
  at_meth : int;  (** index into [cs_meths] *)
  at_field : string;
  at_kind : Dom.kind;
  at_pos : Ast.pos;
  at_base : abase;
  at_path : alp;
  at_locks : alp list;  (** outermost first *)
  at_regions : int list;  (** class-local region indices, outermost first *)
}

type rtmpl = { rt_meth : int; rt_kind : Dom.region_kind; rt_pos : Ast.pos }

(** Call-graph out-edge descriptors for the escape closure. *)
type edge = Einst of string | Estat of string | Enewed of string * int

type cls = {
  cs_name : string;
  cs_meths : msum list;
  cs_ntemps : int;
  cs_cons : con list;
  cs_sites : sdecl list;
  cs_accs : atmpl list;
  cs_regions : rtmpl list;
  cs_edges : (int * edge list) list;
  cs_roots : string list;  (** spawn target method names *)
  cs_seeds : int list;  (** temps of spawn receivers/arguments *)
  cs_muts : (string * string) list;  (** statics assigned outside <clinit> *)
}

val of_class : Ast.class_decl -> cls
(** Summarize one class; pure, no global state. *)

val digest : Ast.class_decl -> string
(** Content digest (MD5 hex) of the class: canonical pretty-printed
    structure plus all source positions.  The cache key. *)

val ty_of_string : string -> Ast.ty
(** Parse back a type printed by {!Jir.Ast.ty_to_string}. *)

val schema : string
(** ["narada.staticsum/1"] — leading line of the serialized form. *)

val to_lines : cls -> string list
val of_lines : string list -> (cls, string) result

val to_string : cls -> string
val of_string : string -> (cls, string) result
(** Canonical text codec; [of_string (to_string s)] structurally equals
    [s], and serialization is deterministic. *)
