(** Escape / thread-sharedness analysis seeded from [spawn] sites. *)

type t

val compute : ?open_world:bool -> Pointsto.t -> t
(** Default (closed world): sharedness and parallelism are derived
    from the program's own [spawn] sites — exact for whole programs
    such as Crucible's, and what the static⊇dynamic oracle validates.
    [~open_world:true] treats the unit as a library an unknown
    multithreaded client may drive: every method may run concurrently
    and every allocation may be shared, leaving lock discipline as the
    only suppression. *)

val is_spawn_reachable : t -> string -> bool
(** May the method qname execute on a non-main thread?  The name-based
    call-graph closure from every spawn target.  Every dynamic race
    has at least one endpoint on a spawned thread, so requiring one
    spawn-reachable endpoint per candidate is a sound
    may-happen-in-parallel rule. *)

val shared : t -> Dom.Sites.t
(** Allocation sites that may be reachable by more than one thread:
    the points-to of spawn receivers/arguments plus all static-field
    values, closed under field reachability. *)
