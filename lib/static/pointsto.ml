(* Flow-insensitive, field-sensitive Andersen-style points-to analysis
   over Jir ASTs with allocation-site abstraction.

   The solver iterates whole-program walks to a fixpoint: every walk
   evaluates each expression once, in a fixed left-to-right order, and
   unions abstract values into monotone tables (locals, [this], return
   values, instance fields, array elements as pseudo-field "[]", static
   fields).  Allocation sites are numbered by (enclosing qname,
   occurrence index within the walk), which makes site identity
   deterministic across passes and across runs.

   Call dispatch is name-based (CHA-style): a call [o.m(...)] may reach
   the concrete method named [m] declared by *any* class.  That is a
   sound over-approximation of virtual dispatch, and keeps the defining
   class of each target aligned with the qualified names the VM uses
   for race sites.

   Synthetic bodies mirror the compiler: per-class [<fieldinit>] (run
   by every constructor) and [<clinit>] (static initializers, run at
   class load).  They are built once and kept in [t.meths] so later
   walks (escape, access collection) can reuse the memoized points-to
   results keyed by physical expression identity. *)

open Jir
module D = Dom

type wkind = Wnormal | Wctor | Wfieldinit | Wclinit

type wmeth = {
  wm_name : string;  (** simple name ([<init>] for constructors) *)
  wm_qname : string;  (** [Cls.name], matching the VM's site naming *)
  wm_cls : string;
  wm_kind : wkind;
  wm_sync : bool;
  wm_static : bool;
  wm_params : (Ast.ty * Ast.id) list;
  wm_body : Ast.block;
  wm_pos : Ast.pos;
}

module ExprTbl = Hashtbl.Make (struct
  type t = Ast.expr

  (* Physical identity: the program AST is built once and every walk
     traverses the same nodes, so [==] identifies occurrences. *)
  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  prog : Program.t;
  open_world : bool;
  meths : wmeth list;
  site_ids : (string * int, D.site) Hashtbl.t;  (* (qname, occurrence) *)
  infos : (D.site, D.site_info) Hashtbl.t;
  mutable nsites : int;
  vlocal : (string * string, D.Sites.t) Hashtbl.t;  (* (qname, var) *)
  vthis : (string, D.Sites.t) Hashtbl.t;  (* qname *)
  vret : (string, D.Sites.t) Hashtbl.t;  (* qname *)
  vfield : (D.site * string, D.Sites.t) Hashtbl.t;  (* "[]" = array elem *)
  vstatic : (string * string, D.Sites.t) Hashtbl.t;  (* (cls, field) *)
  memo : D.Sites.t ExprTbl.t;  (* filled on the final, post-fixpoint pass *)
  occ : (string, int) Hashtbl.t;  (* per-qname counters, reset per pass *)
  mutable changed : bool;
  mutable memoizing : bool;
}

let prog t = t.prog
let meths t = t.meths
let qname cls m = cls ^ "." ^ m

(* ---- universe of walkable method bodies ---- *)

let synth_inits (c : Ast.class_decl) ~static =
  List.filter_map
    (fun (f : Ast.field_decl) ->
      match f.f_init with
      | Some e when Bool.equal f.f_static static ->
        let lv =
          if static then Ast.Lstatic (c.c_name, f.f_name)
          else Ast.Lfield (Ast.mk_expr ~pos:f.f_pos Ast.Ethis, f.f_name)
        in
        Some (Ast.mk_stmt ~pos:f.f_pos (Ast.Sassign (lv, e)))
      | _ -> None)
    c.c_fields

let build_meths prog : wmeth list =
  List.concat_map
    (fun (c : Ast.class_decl) ->
      if c.c_kind = Ast.Kinterface then []
      else
        let normal =
          List.filter_map
            (fun (m : Ast.method_decl) ->
              if m.m_abstract then None
              else
                Some
                  {
                    wm_name = m.m_name;
                    wm_qname = qname c.c_name m.m_name;
                    wm_cls = c.c_name;
                    wm_kind = (if Ast.is_ctor m then Wctor else Wnormal);
                    wm_sync = m.m_sync;
                    wm_static = m.m_static;
                    wm_params = m.m_params;
                    wm_body = m.m_body;
                    wm_pos = m.m_pos;
                  })
            c.c_methods
        in
        let synth name kind static =
          match synth_inits c ~static with
          | [] -> []
          | body ->
            [
              {
                wm_name = name;
                wm_qname = qname c.c_name name;
                wm_cls = c.c_name;
                wm_kind = kind;
                wm_sync = false;
                wm_static = static;
                wm_params = [];
                wm_body = body;
                wm_pos = c.c_pos;
              };
            ]
        in
        normal
        @ synth Code.fieldinit_name Wfieldinit false
        @ synth "<clinit>" Wclinit true)
    (Program.classes prog)

(* ---- name-based dispatch ---- *)

let instance_targets t name =
  List.filter
    (fun w ->
      w.wm_kind = Wnormal && (not w.wm_static) && String.equal w.wm_name name)
    t.meths

let static_targets t name =
  List.filter
    (fun w -> w.wm_kind = Wnormal && w.wm_static && String.equal w.wm_name name)
    t.meths

let ctor_targets t cls ~arity =
  List.filter
    (fun w ->
      w.wm_kind = Wctor
      && String.equal w.wm_cls cls
      && List.length w.wm_params = arity)
    t.meths

(* A [new C] runs C's own <fieldinit> and every inherited one. *)
let fieldinit_targets t cls =
  let chain =
    List.map (fun (c : Ast.class_decl) -> c.c_name) (Program.ancestors t.prog cls)
  in
  List.filter
    (fun w -> w.wm_kind = Wfieldinit && List.mem w.wm_cls chain)
    t.meths

(* ---- monotone tables ---- *)

let get tbl k =
  match Hashtbl.find_opt tbl k with Some s -> s | None -> D.Sites.empty

let add t tbl k v =
  if not (D.Sites.is_empty v) then begin
    let cur = get tbl k in
    if not (D.Sites.subset v cur) then begin
      Hashtbl.replace tbl k (D.Sites.union cur v);
      t.changed <- true
    end
  end

let site t ~qn ~cls ~array ~pos =
  let n = match Hashtbl.find_opt t.occ qn with Some n -> n | None -> 0 in
  Hashtbl.replace t.occ qn (n + 1);
  match Hashtbl.find_opt t.site_ids (qn, n) with
  | Some s -> s
  | None ->
    let s = t.nsites in
    t.nsites <- s + 1;
    Hashtbl.replace t.site_ids (qn, n) s;
    Hashtbl.replace t.infos s
      { D.si_cls = cls; si_meth = qn; si_pos = pos; si_array = array };
    s

let site_info t s =
  match Hashtbl.find_opt t.infos s with
  | Some info -> info
  | None ->
    invalid_arg
      (Printf.sprintf
         "Pointsto.site_info: unknown allocation site %d (have %d sites)" s
         t.nsites)

(* ---- evaluation (one fixed-order visit per occurrence per pass) ---- *)

let rec eval t ~qn (e : Ast.expr) : D.Sites.t =
  let value =
    match e.Ast.desc with
    | Eint _ | Ebool _ | Estr _ | Enull -> D.Sites.empty
    | Ethis -> get t.vthis qn
    | Evar x -> get t.vlocal (qn, x)
    | Efield (o, f) ->
      let bs = eval t ~qn o in
      D.Sites.fold
        (fun s acc -> D.Sites.union acc (get t.vfield (s, f)))
        bs D.Sites.empty
    | Estatic_field (c, f) -> get t.vstatic (c, f)
    | Eindex (a, i) ->
      let bs = eval t ~qn a in
      ignore (eval t ~qn i);
      D.Sites.fold
        (fun s acc -> D.Sites.union acc (get t.vfield (s, "[]")))
        bs D.Sites.empty
    | Ecall (o, m, args) ->
      let recv = eval t ~qn o in
      let argv = List.map (eval t ~qn) args in
      dispatch t ~recv:(Some recv) ~argv (instance_targets t m)
    | Estatic_call (c, m, args) when String.equal c Program.sys_class ->
      let argv = List.map (eval t ~qn) args in
      (* Sys.arraycopy copies references elementwise. *)
      (if String.equal m "arraycopy" then
         match argv with
         | [ src; _; dst; _; _ ] ->
           let elems =
             D.Sites.fold
               (fun s acc -> D.Sites.union acc (get t.vfield (s, "[]")))
               src D.Sites.empty
           in
           D.Sites.iter (fun d -> add t t.vfield (d, "[]") elems) dst
         | _ -> ());
      D.Sites.empty (* no intrinsic returns an object reference *)
    | Estatic_call (_, m, args) ->
      let argv = List.map (eval t ~qn) args in
      dispatch t ~recv:None ~argv (static_targets t m)
    | Enew (cls, args) ->
      let s = site t ~qn ~cls ~array:false ~pos:e.Ast.pos in
      let this = D.Sites.singleton s in
      let argv = List.map (eval t ~qn) args in
      List.iter
        (fun w -> add t t.vthis w.wm_qname this)
        (fieldinit_targets t cls);
      ignore (dispatch t ~recv:(Some this) ~argv (ctor_targets t cls ~arity:(List.length args)));
      this
    | Enew_array (ty, n) ->
      ignore (eval t ~qn n);
      let s =
        site t ~qn ~cls:(Ast.ty_to_string ty ^ "[]") ~array:true ~pos:e.Ast.pos
      in
      D.Sites.singleton s
    | Ebinop (_, a, b) ->
      ignore (eval t ~qn a);
      ignore (eval t ~qn b);
      D.Sites.empty
    | Eunop (_, a) ->
      ignore (eval t ~qn a);
      D.Sites.empty
  in
  if t.memoizing then ExprTbl.replace t.memo e value;
  value

and dispatch t ~recv ~argv targets =
  List.fold_left
    (fun acc w ->
      (match recv with
      | Some r when not w.wm_static -> add t t.vthis w.wm_qname r
      | _ -> ());
      (* Name-based targets with a different arity can never be the
         runtime target of this (typechecked) call: skip them. *)
      if List.length w.wm_params = List.length argv then
        List.iter2
          (fun (_, p) v -> add t t.vlocal (w.wm_qname, p) v)
          w.wm_params argv;
      D.Sites.union acc (get t.vret w.wm_qname))
    D.Sites.empty targets

let rec stmt t ~qn (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Sdecl (_, x, init) ->
    Option.iter (fun e -> add t t.vlocal (qn, x) (eval t ~qn e)) init
  | Sassign (Lvar x, e) -> add t t.vlocal (qn, x) (eval t ~qn e)
  | Sassign (Lfield (o, f), e) ->
    let bs = eval t ~qn o in
    let v = eval t ~qn e in
    D.Sites.iter (fun s -> add t t.vfield (s, f) v) bs
  | Sassign (Lstatic (c, f), e) -> add t t.vstatic (c, f) (eval t ~qn e)
  | Sassign (Lindex (a, i), e) ->
    let bs = eval t ~qn a in
    ignore (eval t ~qn i);
    let v = eval t ~qn e in
    D.Sites.iter (fun s -> add t t.vfield (s, "[]") v) bs
  | Sexpr e -> ignore (eval t ~qn e)
  | Sif (c, th, el) ->
    ignore (eval t ~qn c);
    block t ~qn th;
    block t ~qn el
  | Swhile (c, b) ->
    ignore (eval t ~qn c);
    block t ~qn b
  | Sfor (init, cond, update, b) ->
    Option.iter (stmt t ~qn) init;
    Option.iter (fun e -> ignore (eval t ~qn e)) cond;
    block t ~qn b;
    Option.iter (stmt t ~qn) update
  | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
  | Sreturn (Some e) -> add t t.vret qn (eval t ~qn e)
  | Ssync (e, b) ->
    ignore (eval t ~qn e);
    block t ~qn b
  | Sassert e -> ignore (eval t ~qn e)
  | Sspawn (_, recv, m, args) ->
    let r = eval t ~qn recv in
    let argv = List.map (eval t ~qn) args in
    ignore (dispatch t ~recv:(Some r) ~argv (instance_targets t m))
  | Sjoin e -> ignore (eval t ~qn e)

and block t ~qn b = List.iter (stmt t ~qn) b

(* ---- open-world boundary ---- *)

(* Is an allocation site a possible runtime value of a declared type? *)
let site_compatible t (ty : Ast.ty) (info : D.site_info) =
  match ty with
  | Ast.Tclass _ ->
    (not info.D.si_array)
    && Program.is_subtype t.prog (Ast.Tclass info.D.si_cls) ty
  | Ast.Tarray e ->
    info.D.si_array && String.equal info.D.si_cls (Ast.ty_to_string e ^ "[]")
  | _ -> false

let compatible_sites t ty =
  Hashtbl.fold
    (fun s info acc ->
      if site_compatible t ty info then D.Sites.add s acc else acc)
    t.infos D.Sites.empty

(* In open-world (library) mode, any caller outside the analyzed unit
   may invoke any method with any type-compatible receiver and
   arguments — exactly what the synthesized tests do.  Seed [this] and
   every reference-typed parameter with all compatible allocation
   sites, so may-alias questions are answered for arbitrary calling
   contexts, not just the ones the seed method happens to exercise.
   (This assumes each class is allocated somewhere in the unit; the
   corpus seed methods guarantee it.) *)
let seed_open_world t =
  List.iter
    (fun w ->
      if not w.wm_static then
        add t t.vthis w.wm_qname (compatible_sites t (Ast.Tclass w.wm_cls));
      List.iter
        (fun (ty, p) ->
          add t t.vlocal (w.wm_qname, p) (compatible_sites t ty))
        w.wm_params)
    t.meths

let pass t =
  Hashtbl.reset t.occ;
  if t.open_world then seed_open_world t;
  List.iter (fun w -> block t ~qn:w.wm_qname w.wm_body) t.meths

let solve ?(open_world = false) prog : t =
  let t =
    {
      prog;
      open_world;
      meths = build_meths prog;
      site_ids = Hashtbl.create 64;
      infos = Hashtbl.create 64;
      nsites = 0;
      vlocal = Hashtbl.create 64;
      vthis = Hashtbl.create 16;
      vret = Hashtbl.create 16;
      vfield = Hashtbl.create 64;
      vstatic = Hashtbl.create 16;
      memo = ExprTbl.create 256;
      occ = Hashtbl.create 16;
      changed = true;
      memoizing = false;
    }
  in
  while t.changed do
    t.changed <- false;
    pass t
  done;
  (* One extra pass at the fixpoint to record per-occurrence results. *)
  t.memoizing <- true;
  pass t;
  t

(* ---- post-fixpoint queries ---- *)

(* Points-to of a specific expression occurrence, recorded during the
   final pass.  Total over the ASTs held in [meths t]. *)
let pts_of_expr t e =
  match ExprTbl.find_opt t.memo e with Some s -> s | None -> D.Sites.empty

let field_pts t s f = get t.vfield (s, f)

let fields_of_site t s =
  Hashtbl.fold
    (fun (s', f) v acc -> if s' = s then (f, v) :: acc else acc)
    t.vfield []

let static_values t =
  Hashtbl.fold (fun _ v acc -> D.Sites.union acc v) t.vstatic D.Sites.empty

let all_sites t =
  let rec go acc i =
    if i < 0 then acc else go (D.Sites.add i acc) (i - 1)
  in
  go D.Sites.empty (t.nsites - 1)
