(** Flow-insensitive, field-sensitive Andersen-style points-to analysis
    over Jir ASTs with allocation-site abstraction.

    The solver iterates whole-program walks to a fixpoint over monotone
    tables; allocation sites are numbered by (enclosing method,
    occurrence index), which is deterministic across passes and runs.
    Call dispatch is name-based (CHA-style): sound for virtual
    dispatch, and the defining class of each target matches the
    qualified names the VM uses for race sites. *)

type wkind = Wnormal | Wctor | Wfieldinit | Wclinit

(** One walkable method body: a declared concrete method, or a
    synthetic [<fieldinit>]/[<clinit>] mirroring the compiler. *)
type wmeth = {
  wm_name : string;  (** simple name ([<init>] for constructors) *)
  wm_qname : string;  (** [Cls.name], matching the VM's site naming *)
  wm_cls : string;
  wm_kind : wkind;
  wm_sync : bool;
  wm_static : bool;
  wm_params : (Jir.Ast.ty * Jir.Ast.id) list;
  wm_body : Jir.Ast.block;
  wm_pos : Jir.Ast.pos;
}

type t

val solve : ?open_world:bool -> Jir.Program.t -> t
(** Run the fixpoint.  Deterministic: same program, same tables.

    [~open_world:true] models a library boundary: every method's
    [this] and every reference-typed parameter is additionally seeded
    with all type-compatible allocation sites of the unit, so aliasing
    reflects arbitrary calling contexts (such as synthesized tests)
    rather than only the seed method's calls. *)

val prog : t -> Jir.Program.t

val meths : t -> wmeth list
(** The deterministic universe of walkable bodies, in declaration
    order, with synthetic initializers appended per class.  Later
    walks (escape, access collection) must traverse these exact ASTs
    so that {!pts_of_expr} applies. *)

val instance_targets : t -> string -> wmeth list
(** Name-based dispatch: every concrete instance method named [m]. *)

val static_targets : t -> string -> wmeth list
val ctor_targets : t -> string -> arity:int -> wmeth list

val fieldinit_targets : t -> string -> wmeth list
(** The [<fieldinit>] bodies run by [new cls]: the class's own and
    every inherited one. *)

val site_info : t -> Dom.site -> Dom.site_info

val pts_of_expr : t -> Jir.Ast.expr -> Dom.Sites.t
(** Points-to of a specific expression occurrence (physical identity),
    recorded during the solver's final pass over [meths t]. *)

val field_pts : t -> Dom.site -> string -> Dom.Sites.t
(** May-point-to of field [f] of site [s]; ["[]"] for array elements. *)

val fields_of_site : t -> Dom.site -> (string * Dom.Sites.t) list

val static_values : t -> Dom.Sites.t
(** Union of the may-point-to sets of all static fields. *)

val all_sites : t -> Dom.Sites.t
(** Every allocation site of the program. *)
