(* The global linking phase of the incremental static tier.

   Input: the program (for the class hierarchy) plus one {!Summary.cls}
   per class, in program class order.  The linker assigns global
   allocation-site and region ids by per-class concatenation (exactly
   reproducing the old whole-program solver's first-visit numbering),
   resolves name-based call descriptors against the global method
   universe, iterates the symbolic constraints to the least fixpoint
   the old chaotic AST-walk iteration computed, and materializes the
   same access records, sync regions and escape facts.

   This phase is cheap relative to summarization (no AST in sight) and
   is always recomputed — all whole-program facts (dispatch, subtyping,
   write-once statics, escape closure) live here, which is what lets a
   cached summary stay valid no matter how other classes change. *)

open Jir
module D = Dom
module S = Summary

type target = { tg_qname : string; tg_params : string list }

type t = {
  lk_prog : Program.t;
  lk_infos : D.site_info array;
  lk_accs : D.acc list;
  lk_regions : D.region list;
  lk_esc : D.esc;
  lk_shared : D.Sites.t;
}

let accs t = t.lk_accs
let regions t = t.lk_regions
let esc t = t.lk_esc
let shared t = t.lk_shared
let prog t = t.lk_prog

let site_info t s =
  if s >= 0 && s < Array.length t.lk_infos then t.lk_infos.(s)
  else
    invalid_arg
      (Printf.sprintf "Link.site_info: unknown allocation site %d (have %d)" s
         (Array.length t.lk_infos))

(* ---- solver state ---- *)

type st = {
  infos : D.site_info array;
  temps : D.Sites.t array array;  (* per class, per temp *)
  vthis : (string, D.Sites.t) Hashtbl.t;
  vret : (string, D.Sites.t) Hashtbl.t;
  vlocal : (string * string, D.Sites.t) Hashtbl.t;
  vstatic : (string * string, D.Sites.t) Hashtbl.t;
  vfield : (D.site * string, D.Sites.t) Hashtbl.t;
  instance_tbl : (string, target list) Hashtbl.t;  (* by simple name *)
  static_tbl : (string, target list) Hashtbl.t;
  ctor_tbl : (string * int, target list) Hashtbl.t;  (* (cls, arity) *)
  fieldinit_tbl : (string, string) Hashtbl.t;  (* cls -> qname *)
  mutable changed : bool;
}

let get tbl k =
  match Hashtbl.find_opt tbl k with Some s -> s | None -> D.Sites.empty

let add st tbl k v =
  if not (D.Sites.is_empty v) then begin
    let cur = get tbl k in
    if not (D.Sites.subset v cur) then begin
      Hashtbl.replace tbl k (D.Sites.union cur v);
      st.changed <- true
    end
  end

let add_temp st temps k v =
  if not (D.Sites.is_empty v) then
    if not (D.Sites.subset v temps.(k)) then begin
      temps.(k) <- D.Sites.union temps.(k) v;
      st.changed <- true
    end

let targets tbl name = match Hashtbl.find_opt tbl name with Some l -> l | None -> []

let build_tables st (sums : S.cls list) =
  let push tbl k tg =
    Hashtbl.replace tbl k (targets tbl k @ [ tg ])
  in
  List.iter
    (fun (s : S.cls) ->
      List.iter
        (fun (m : S.msum) ->
          let tg =
            { tg_qname = m.S.ms_qname; tg_params = List.map snd m.S.ms_params }
          in
          match m.S.ms_kind with
          | S.Wnormal ->
            if m.S.ms_static then push st.static_tbl m.S.ms_name tg
            else push st.instance_tbl m.S.ms_name tg
          | S.Wctor ->
            push st.ctor_tbl (s.S.cs_name, List.length m.S.ms_params) tg
          | S.Wfieldinit ->
            Hashtbl.replace st.fieldinit_tbl s.S.cs_name m.S.ms_qname
          | S.Wclinit -> ())
        s.S.cs_meths)
    sums

(* Receiver flows to [this] of every name-matched target; parameters
   bind only on arity match; the result is the union of every
   name-matched target's return value — mirroring the old [dispatch]. *)
let dispatch st ~recv ~argv tgs =
  List.fold_left
    (fun acc tg ->
      (match recv with
      | Some r -> add st st.vthis tg.tg_qname r
      | None -> ());
      if List.length tg.tg_params = List.length argv then
        List.iter2
          (fun p v -> add st st.vlocal (tg.tg_qname, p) v)
          tg.tg_params argv;
      D.Sites.union acc (get st.vret tg.tg_qname))
    D.Sites.empty tgs

let var_get st temps = function
  | S.Vtemp k -> temps.(k)
  | S.Vthis qn -> get st.vthis qn
  | S.Vret qn -> get st.vret qn
  | S.Vlocal (qn, x) -> get st.vlocal (qn, x)
  | S.Vstatic (c, f) -> get st.vstatic (c, f)

let var_add st temps v value =
  match v with
  | S.Vtemp k -> add_temp st temps k value
  | S.Vthis qn -> add st st.vthis qn value
  | S.Vret qn -> add st st.vret qn value
  | S.Vlocal (qn, x) -> add st st.vlocal (qn, x) value
  | S.Vstatic (c, f) -> add st st.vstatic (c, f) value

let load st bs f =
  D.Sites.fold
    (fun s acc -> D.Sites.union acc (get st.vfield (s, f)))
    bs D.Sites.empty

let apply_con st prog ~site_offset ~temps (c : S.con) =
  match c with
  | S.Ccopy (d, src) -> var_add st temps d (var_get st temps src)
  | S.Cload (d, b, f) -> var_add st temps d (load st (var_get st temps b) f)
  | S.Cstore (b, f, src) ->
    let v = var_get st temps src in
    D.Sites.iter (fun s -> add st st.vfield (s, f) v) (var_get st temps b)
  | S.Cnew (d, k, cls, args) ->
    let this = D.Sites.singleton (site_offset + k) in
    add_temp st temps d this;
    let argv = List.map (fun a -> temps.(a)) args in
    List.iter
      (fun (anc : Ast.class_decl) ->
        match Hashtbl.find_opt st.fieldinit_tbl anc.Ast.c_name with
        | Some qn -> add st st.vthis qn this
        | None -> ())
      (Program.ancestors prog cls);
    ignore
      (dispatch st ~recv:(Some this) ~argv
         (targets st.ctor_tbl (cls, List.length args)))
  | S.Cnewarr (d, k) -> add_temp st temps d (D.Sites.singleton (site_offset + k))
  | S.Cicall (d, r, m, args) ->
    let argv = List.map (fun a -> temps.(a)) args in
    add_temp st temps d
      (dispatch st ~recv:(Some temps.(r)) ~argv (targets st.instance_tbl m))
  | S.Cscall (d, m, args) ->
    let argv = List.map (fun a -> temps.(a)) args in
    add_temp st temps d (dispatch st ~recv:None ~argv (targets st.static_tbl m))

(* ---- open-world boundary (same rule as the old solver) ---- *)

let site_compatible prog (ty : Ast.ty) (info : D.site_info) =
  match ty with
  | Ast.Tclass _ ->
    (not info.D.si_array)
    && Program.is_subtype prog (Ast.Tclass info.D.si_cls) ty
  | Ast.Tarray e ->
    info.D.si_array && String.equal info.D.si_cls (Ast.ty_to_string e ^ "[]")
  | _ -> false

let compatible_sites st prog ty =
  let acc = ref D.Sites.empty in
  Array.iteri
    (fun s info -> if site_compatible prog ty info then acc := D.Sites.add s !acc)
    st.infos;
  !acc

(* Seed [this] and every reference-typed parameter of every method with
   all type-compatible allocation sites.  The old solver re-seeded at
   the top of every pass while the site universe was still growing;
   here every site is known up front, so seeding once yields the same
   least fixpoint. *)
let seed_open_world st prog (sums : S.cls list) =
  List.iter
    (fun (s : S.cls) ->
      List.iter
        (fun (m : S.msum) ->
          if not m.S.ms_static then
            add st st.vthis m.S.ms_qname
              (compatible_sites st prog (Ast.Tclass s.S.cs_name));
          List.iter
            (fun (ty, p) ->
              add st st.vlocal
                (m.S.ms_qname, p)
                (compatible_sites st prog (S.ty_of_string ty)))
            m.S.ms_params)
        s.S.cs_meths)
    sums

(* ---- linking ---- *)

let solve ?(open_world = false) (prog : Program.t) (sums : S.cls list) : t =
  (* Global site ids: per-class concatenation in program class order. *)
  let nsites =
    List.fold_left (fun n (s : S.cls) -> n + List.length s.S.cs_sites) 0 sums
  in
  let infos =
    Array.make nsites
      { D.si_cls = ""; si_meth = ""; si_pos = { Ast.line = 0; col = 0 }; si_array = false }
  in
  let site_offsets =
    let off = ref 0 in
    List.map
      (fun (s : S.cls) ->
        let o = !off in
        List.iteri
          (fun i (d : S.sdecl) ->
            infos.(o + i) <-
              {
                D.si_cls = d.S.sd_cls;
                si_meth = d.S.sd_qname;
                si_pos = d.S.sd_pos;
                si_array = d.S.sd_array;
              })
          s.S.cs_sites;
        off := o + List.length s.S.cs_sites;
        o)
      sums
  in
  let st =
    {
      infos;
      temps =
        Array.of_list
          (List.map (fun (s : S.cls) -> Array.make s.S.cs_ntemps D.Sites.empty) sums);
      vthis = Hashtbl.create 16;
      vret = Hashtbl.create 16;
      vlocal = Hashtbl.create 64;
      vstatic = Hashtbl.create 16;
      vfield = Hashtbl.create 64;
      instance_tbl = Hashtbl.create 16;
      static_tbl = Hashtbl.create 16;
      ctor_tbl = Hashtbl.create 16;
      fieldinit_tbl = Hashtbl.create 16;
      changed = true;
    }
  in
  build_tables st sums;
  if open_world then seed_open_world st prog sums;
  let indexed = List.combine (List.combine sums site_offsets) (Array.to_list st.temps) in
  while st.changed do
    st.changed <- false;
    List.iter
      (fun (((s : S.cls), site_offset), temps) ->
        List.iter (apply_con st prog ~site_offset ~temps) s.S.cs_cons)
      indexed
  done;
  (* ---- whole-program lock facts ---- *)
  let muts : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : S.cls) ->
      List.iter (fun cf -> Hashtbl.replace muts cf ()) s.S.cs_muts)
    sums;
  let write_once c f = not (Hashtbl.mem muts (c, f)) in
  let resolve_alp = function
    | S.Athis -> D.Lthis
    | S.Alocal x -> D.Llocal x
    | S.Aglobal (c, f) -> if write_once c f then D.Lglobal (c, f) else D.Lunknown
    | S.Aunknown -> D.Lunknown
  in
  (* ---- materialize accesses and regions ---- *)
  let skip_array_length field bases =
    (not (String.equal field "[]"))
    && (not (D.Sites.is_empty bases))
    && D.Sites.for_all (fun s -> infos.(s).D.si_array) bases
  in
  let next_acc = ref 0 in
  let region_off = ref 0 in
  let acc_out = ref [] in
  let region_out = ref [] in
  List.iter
    (fun (((s : S.cls), _), temps) ->
      let meths = Array.of_list s.S.cs_meths in
      let roff = !region_off in
      List.iteri
        (fun i (r : S.rtmpl) ->
          region_out :=
            {
              D.rg_id = roff + i;
              rg_qname = meths.(r.S.rt_meth).S.ms_qname;
              rg_cls = s.S.cs_name;
              rg_pos = r.S.rt_pos;
              rg_kind = r.S.rt_kind;
            }
            :: !region_out)
        s.S.cs_regions;
      region_off := roff + List.length s.S.cs_regions;
      List.iter
        (fun (a : S.atmpl) ->
          let base =
            match a.S.at_base with
            | S.Atemp k -> D.Binst temps.(k)
            | S.Astatic c -> D.Bstatic c
          in
          let skip =
            match base with
            | D.Binst bs -> skip_array_length a.S.at_field bs
            | D.Bstatic _ -> false
          in
          if not skip then begin
            let id = !next_acc in
            next_acc := id + 1;
            acc_out :=
              {
                D.sa_id = id;
                sa_qname = meths.(a.S.at_meth).S.ms_qname;
                sa_cls = s.S.cs_name;
                sa_field = a.S.at_field;
                sa_kind = a.S.at_kind;
                sa_pos = a.S.at_pos;
                sa_base = base;
                sa_base_path = resolve_alp a.S.at_path;
                sa_locks = List.map resolve_alp a.S.at_locks;
                sa_regions = List.map (fun r -> roff + r) a.S.at_regions;
              }
              :: !acc_out
          end)
        s.S.cs_accs)
    indexed;
  (* ---- escape facts ---- *)
  let all_sites =
    let rec go acc i = if i < 0 then acc else go (D.Sites.add i acc) (i - 1) in
    go D.Sites.empty (nsites - 1)
  in
  let esc =
    if open_world then
      {
        D.esc_parallel = true;
        esc_reachable = Hashtbl.create 1;
        esc_shared = all_sites;
      }
    else begin
      let edge_map : (string, string list) Hashtbl.t = Hashtbl.create 32 in
      let resolve_edge = function
        | S.Einst m -> List.map (fun tg -> tg.tg_qname) (targets st.instance_tbl m)
        | S.Estat m -> List.map (fun tg -> tg.tg_qname) (targets st.static_tbl m)
        | S.Enewed (cls, arity) ->
          List.map (fun tg -> tg.tg_qname) (targets st.ctor_tbl (cls, arity))
          @ List.concat_map
              (fun (anc : Ast.class_decl) ->
                match Hashtbl.find_opt st.fieldinit_tbl anc.Ast.c_name with
                | Some qn -> [ qn ]
                | None -> [])
              (Program.ancestors prog cls)
      in
      List.iter
        (fun (s : S.cls) ->
          let meths = Array.of_list s.S.cs_meths in
          List.iter
            (fun (mi, edges) ->
              let qn = meths.(mi).S.ms_qname in
              let prev =
                match Hashtbl.find_opt edge_map qn with Some l -> l | None -> []
              in
              Hashtbl.replace edge_map qn
                (prev @ List.concat_map resolve_edge edges))
            s.S.cs_edges)
        sums;
      let spawn_reachable = Hashtbl.create 32 in
      let rec reach qn =
        if not (Hashtbl.mem spawn_reachable qn) then begin
          Hashtbl.add spawn_reachable qn ();
          match Hashtbl.find_opt edge_map qn with
          | Some succs -> List.iter reach succs
          | None -> ()
        end
      in
      List.iter
        (fun (s : S.cls) ->
          List.iter
            (fun m ->
              List.iter (fun tg -> reach tg.tg_qname) (targets st.instance_tbl m))
            s.S.cs_roots)
        sums;
      let seeds =
        List.fold_left
          (fun acc (((s : S.cls), _), temps) ->
            List.fold_left
              (fun acc k -> D.Sites.union acc temps.(k))
              acc s.S.cs_seeds)
          D.Sites.empty indexed
      in
      let static_values =
        Hashtbl.fold (fun _ v acc -> D.Sites.union acc v) st.vstatic D.Sites.empty
      in
      let fields_of_site =
        let by_site = Array.make nsites [] in
        Hashtbl.iter
          (fun (s, _) v -> if s >= 0 && s < nsites then by_site.(s) <- v :: by_site.(s))
          st.vfield;
        by_site
      in
      let shared = ref D.Sites.empty in
      let work = ref (D.Sites.union seeds static_values) in
      while not (D.Sites.is_empty !work) do
        let s = D.Sites.min_elt !work in
        work := D.Sites.remove s !work;
        if not (D.Sites.mem s !shared) then begin
          shared := D.Sites.add s !shared;
          List.iter
            (fun v -> work := D.Sites.union !work (D.Sites.diff v !shared))
            fields_of_site.(s)
        end
      done;
      { D.esc_parallel = false; esc_reachable = spawn_reachable; esc_shared = !shared }
    end
  in
  {
    lk_prog = prog;
    lk_infos = infos;
    lk_accs = List.rev !acc_out;
    lk_regions = List.rev !region_out;
    lk_esc = esc;
    lk_shared = esc.D.esc_shared;
  }
