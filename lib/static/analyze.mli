(** Driver for the static tier: points-to + escape + accesses +
    racy-pair candidates, plus the membership query used by the
    dynamic-pipeline filter and the Crucible static⊇dynamic oracle. *)

(** Planted unsoundness for validating the Crucible oracle: drop all
    accesses inside sync regions before pairing. *)
type mutation = Drop_sync

val mutation_to_string : mutation -> string

type t

val run : ?mutate:mutation -> ?open_world:bool -> Jir.Program.t -> t
(** Deterministic; safe to call from parallel domains (no shared
    state).  [~open_world:true] analyzes the unit as a library driven
    by an unknown multithreaded client (see {!Escape.compute}) — the
    mode used by [narada lint] and the pipeline's static filter, where
    the seed test is sequential and threads come from synthesized
    tests. *)

val candidates : t -> Dom.cand list
val accesses : t -> Dom.acc list
val regions : t -> Dom.region list
val escape : t -> Escape.t
val pointsto : t -> Pointsto.t

val covers : t -> field:string -> m1:string -> m2:string -> bool
(** Is the dynamic race identity (field, unordered {m1, m2}) — where
    [m1]/[m2] are method qnames as the VM names sites — covered by
    some static candidate? *)
