(** Driver for the static tier: per-class summaries (optionally backed
    by a digest-keyed {!Cache}) linked into whole-program facts plus
    racy-pair candidates, and the membership query used by the
    dynamic-pipeline filter and the Crucible oracles. *)

(** Planted unsoundness for validating the Crucible oracles:
    [Drop_sync] drops all accesses inside sync regions before pairing;
    [Stale_cache] keys the summary cache by class name instead of
    content digest, so warm analyses reuse stale summaries after an
    edit. *)
type mutation = Drop_sync | Stale_cache

val mutation_to_string : mutation -> string

type t

val run :
  ?mutate:mutation -> ?open_world:bool -> ?cache:Cache.t -> Jir.Program.t -> t
(** Deterministic; safe to call from parallel domains when each call
    has its own (or no) cache.  [~open_world:true] analyzes the unit
    as a library driven by an unknown multithreaded client — the mode
    used by [narada lint] and the pipeline's static filter, where the
    seed test is sequential and threads come from synthesized tests.
    With [~cache], summaries of classes whose digests are present are
    reused and only the linking phase runs; results are identical to a
    cache-less run. *)

val candidates : t -> Dom.cand list
val accesses : t -> Dom.acc list
val regions : t -> Dom.region list
val shared : t -> Dom.Sites.t
val prog : t -> Jir.Program.t
val site_info : t -> Dom.site -> Dom.site_info

val is_spawn_reachable : t -> string -> bool
(** May the method qname execute on a non-main thread? *)

val covers : t -> field:string -> m1:string -> m2:string -> bool
(** Is the dynamic race identity (field, unordered {m1, m2}) — where
    [m1]/[m2] are method qnames as the VM names sites — covered by
    some static candidate?  The key table is built lazily on first
    use. *)
