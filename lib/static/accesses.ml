(* Collection of static field/array accesses together with the locks
   that are *must*-held at each access, and the sync regions enclosing
   it.

   Lock discipline is tracked per body and context-insensitively: an
   access in a callee is recorded with the callee's own locks only.
   Under-approximating the held locks can only make the racy-pair
   generator report more pairs, which is the sound direction.

   Lock identities are syntactic paths that are stable between monitor
   entry and the guarded access:

   - [this] (never assignable);
   - a local with exactly one definition, where that definition is a
     parameter or an initialized declaration (so it dominates every
     use and cannot run between a monitor entry and an access);
   - a write-once static field (only assigned by its initializer).

   Everything else is [Lunknown], which is collected as evidence that
   *some* lock is held (for lint) but never matches another lock.

   [<clinit>] bodies are skipped: class initializers run during VM
   setup before any detector attaches, so their accesses can neither
   appear in dynamic races nor be meaningfully linted. [<fieldinit>]
   bodies run at every [new] and are included. *)

open Jir
module D = Dom

type t = { accs : D.acc list; regions : D.region list }

(* ---- stability of lock paths ---- *)

(* Defs per (qname, var): params, initialized/uninitialized decls,
   assignments, spawn bindings.  [stable] additionally requires the
   unique def to be a param or an initialized declaration. *)
let local_defs (meths : Pointsto.wmeth list) =
  let defs : (string * string, int * bool) Hashtbl.t = Hashtbl.create 64 in
  let note qn x ~stable =
    let n =
      match Hashtbl.find_opt defs (qn, x) with
      | Some (n, _) -> n
      | None -> 0
    in
    Hashtbl.replace defs (qn, x) (n + 1, if n = 0 then stable else false)
  in
  let rec stmt qn (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sdecl (_, x, init) -> note qn x ~stable:(Option.is_some init)
    | Sassign (Lvar x, _) -> note qn x ~stable:false
    | Sassign ((Lfield _ | Lstatic _ | Lindex _), _)
    | Sexpr _ | Sbreak | Scontinue | Sreturn _ | Sassert _ | Sthrow _
    | Sjoin _ ->
      ()
    | Sif (_, a, b) ->
      List.iter (stmt qn) a;
      List.iter (stmt qn) b
    | Swhile (_, b) -> List.iter (stmt qn) b
    | Sfor (init, _, update, b) ->
      Option.iter (stmt qn) init;
      List.iter (stmt qn) b;
      Option.iter (stmt qn) update
    | Ssync (_, b) -> List.iter (stmt qn) b
    | Sspawn (x, _, _, _) -> note qn x ~stable:false
  in
  List.iter
    (fun (w : Pointsto.wmeth) ->
      List.iter (fun (_, p) -> note w.wm_qname p ~stable:true) w.wm_params;
      List.iter (stmt w.wm_qname) w.wm_body)
    meths;
  fun qn x ->
    match Hashtbl.find_opt defs (qn, x) with
    | Some (1, true) -> true
    | _ -> false

(* Static fields assigned anywhere outside a <clinit> body are not
   usable as global lock identities. *)
let mutable_statics (meths : Pointsto.wmeth list) =
  let muts : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Sassign (Lstatic (c, f), _) -> Hashtbl.replace muts (c, f) ()
    | Sdecl _
    | Sassign ((Lvar _ | Lfield _ | Lindex _), _)
    | Sexpr _ | Sbreak | Scontinue | Sreturn _ | Sassert _ | Sthrow _
    | Sspawn _ | Sjoin _ ->
      ()
    | Sif (_, a, b) ->
      List.iter stmt a;
      List.iter stmt b
    | Swhile (_, b) | Ssync (_, b) -> List.iter stmt b
    | Sfor (init, _, update, b) ->
      Option.iter stmt init;
      List.iter stmt b;
      Option.iter stmt update
  in
  List.iter
    (fun (w : Pointsto.wmeth) ->
      if w.wm_kind <> Pointsto.Wclinit then List.iter stmt w.wm_body)
    meths;
  fun c f -> not (Hashtbl.mem muts (c, f))

(* ---- the walk ---- *)

type ctx = {
  pt : Pointsto.t;
  single_def : string -> string -> bool;
  write_once : string -> string -> bool;
  mutable next_acc : int;
  mutable next_region : int;
  mutable out : D.acc list;  (* reversed *)
  mutable regions_out : D.region list;  (* reversed *)
}

let lpath_of ctx ~qn (e : Ast.expr) : D.lpath =
  match e.Ast.desc with
  | Ethis -> D.Lthis
  | Evar x when ctx.single_def qn x -> D.Llocal x
  | Estatic_field (c, f) when ctx.write_once c f -> D.Lglobal (c, f)
  | _ -> D.Lunknown

(* Skip pure-array-base accesses to a named field: [arr.length] emits
   no dynamic access event, so recording it would only add lint noise. *)
let skip_array_length ctx field bases =
  (not (String.equal field "[]"))
  && (not (D.Sites.is_empty bases))
  && D.Sites.for_all (fun s -> (Pointsto.site_info ctx.pt s).D.si_array) bases

let emit ctx (w : Pointsto.wmeth) ~locks ~regions ~kind ~field ~base ~base_path
    ~pos =
  let skip =
    match base with
    | D.Binst bs -> skip_array_length ctx field bs
    | D.Bstatic _ -> false
  in
  if not skip then begin
    let id = ctx.next_acc in
    ctx.next_acc <- id + 1;
    ctx.out <-
      {
        D.sa_id = id;
        sa_qname = w.wm_qname;
        sa_cls = w.wm_cls;
        sa_field = field;
        sa_kind = kind;
        sa_pos = pos;
        sa_base = base;
        sa_base_path = base_path;
        sa_locks = List.rev locks;
        sa_regions = List.rev regions;
      }
      :: ctx.out
  end

let collect (pt : Pointsto.t) : t =
  let meths = Pointsto.meths pt in
  let ctx =
    {
      pt;
      single_def = local_defs meths;
      write_once = mutable_statics meths;
      next_acc = 0;
      next_region = 0;
      out = [];
      regions_out = [];
    }
  in
  let walk (w : Pointsto.wmeth) =
    let qn = w.wm_qname in
    let pts e = Pointsto.pts_of_expr pt e in
    (* locks/regions are innermost-first here; [emit] reverses. *)
    let rec expr ~locks ~regions (e : Ast.expr) =
      match e.Ast.desc with
      | Eint _ | Ebool _ | Estr _ | Enull | Ethis | Evar _ -> ()
      | Efield (o, f) ->
        expr ~locks ~regions o;
        emit ctx w ~locks ~regions ~kind:D.Kread ~field:f
          ~base:(D.Binst (pts o)) ~base_path:(lpath_of ctx ~qn o)
          ~pos:e.Ast.pos
      | Estatic_field (c, f) ->
        emit ctx w ~locks ~regions ~kind:D.Kread ~field:f ~base:(D.Bstatic c)
          ~base_path:D.Lunknown ~pos:e.Ast.pos
      | Eindex (a, i) ->
        expr ~locks ~regions a;
        expr ~locks ~regions i;
        emit ctx w ~locks ~regions ~kind:D.Kread ~field:"[]"
          ~base:(D.Binst (pts a)) ~base_path:(lpath_of ctx ~qn a)
          ~pos:e.Ast.pos
      | Ecall (o, _, args) ->
        expr ~locks ~regions o;
        List.iter (expr ~locks ~regions) args
      | Estatic_call (c, m, args) ->
        List.iter (expr ~locks ~regions) args;
        if String.equal c Program.sys_class && String.equal m "arraycopy" then (
          match args with
          | [ src; _; dst; _; _ ] ->
            emit ctx w ~locks ~regions ~kind:D.Kread ~field:"[]"
              ~base:(D.Binst (pts src)) ~base_path:(lpath_of ctx ~qn src)
              ~pos:e.Ast.pos;
            emit ctx w ~locks ~regions ~kind:D.Kwrite ~field:"[]"
              ~base:(D.Binst (pts dst)) ~base_path:(lpath_of ctx ~qn dst)
              ~pos:e.Ast.pos
          | _ -> ())
      | Enew (_, args) -> List.iter (expr ~locks ~regions) args
      | Enew_array (_, n) -> expr ~locks ~regions n
      | Ebinop (_, a, b) ->
        expr ~locks ~regions a;
        expr ~locks ~regions b
      | Eunop (_, a) -> expr ~locks ~regions a
    in
    let rec stmt ~locks ~regions (s : Ast.stmt) =
      match s.Ast.sdesc with
      | Sdecl (_, _, init) -> Option.iter (expr ~locks ~regions) init
      | Sassign (Lvar _, e) -> expr ~locks ~regions e
      | Sassign (Lfield (o, f), e) ->
        expr ~locks ~regions o;
        expr ~locks ~regions e;
        emit ctx w ~locks ~regions ~kind:D.Kwrite ~field:f
          ~base:(D.Binst (pts o)) ~base_path:(lpath_of ctx ~qn o)
          ~pos:s.Ast.spos
      | Sassign (Lstatic (c, f), e) ->
        expr ~locks ~regions e;
        emit ctx w ~locks ~regions ~kind:D.Kwrite ~field:f ~base:(D.Bstatic c)
          ~base_path:D.Lunknown ~pos:s.Ast.spos
      | Sassign (Lindex (a, i), e) ->
        expr ~locks ~regions a;
        expr ~locks ~regions i;
        expr ~locks ~regions e;
        emit ctx w ~locks ~regions ~kind:D.Kwrite ~field:"[]"
          ~base:(D.Binst (pts a)) ~base_path:(lpath_of ctx ~qn a)
          ~pos:s.Ast.spos
      | Sexpr e | Sassert e | Sjoin e -> expr ~locks ~regions e
      | Sif (c, a, b) ->
        expr ~locks ~regions c;
        List.iter (stmt ~locks ~regions) a;
        List.iter (stmt ~locks ~regions) b
      | Swhile (c, b) ->
        expr ~locks ~regions c;
        List.iter (stmt ~locks ~regions) b
      | Sfor (init, cond, update, b) ->
        Option.iter (stmt ~locks ~regions) init;
        Option.iter (expr ~locks ~regions) cond;
        List.iter (stmt ~locks ~regions) b;
        Option.iter (stmt ~locks ~regions) update
      | Sbreak | Scontinue | Sreturn None | Sthrow _ -> ()
      | Sreturn (Some e) -> expr ~locks ~regions e
      | Ssync (e, b) ->
        expr ~locks ~regions e;
        let rid = ctx.next_region in
        ctx.next_region <- rid + 1;
        ctx.regions_out <-
          {
            D.rg_id = rid;
            rg_qname = qn;
            rg_cls = w.wm_cls;
            rg_pos = s.Ast.spos;
            rg_kind = D.Rsync_block;
          }
          :: ctx.regions_out;
        let locks = lpath_of ctx ~qn e :: locks in
        List.iter (stmt ~locks ~regions:(rid :: regions)) b
      | Sspawn (_, recv, _, args) ->
        expr ~locks ~regions recv;
        List.iter (expr ~locks ~regions) args
    in
    let locks, regions =
      if w.wm_sync then begin
        let rid = ctx.next_region in
        ctx.next_region <- rid + 1;
        ctx.regions_out <-
          {
            D.rg_id = rid;
            rg_qname = qn;
            rg_cls = w.wm_cls;
            rg_pos = w.wm_pos;
            rg_kind = D.Rsync_method;
          }
          :: ctx.regions_out;
        (* A static sync method would lock the class object; the
           compiler rejects those, but stay conservative. *)
        ((if w.wm_static then [ D.Lunknown ] else [ D.Lthis ]), [ rid ])
      end
      else ([], [])
    in
    List.iter (stmt ~locks ~regions) w.wm_body
  in
  List.iter
    (fun (w : Pointsto.wmeth) ->
      if w.wm_kind <> Pointsto.Wclinit then walk w)
    meths;
  { accs = List.rev ctx.out; regions = List.rev ctx.regions_out }
