(** Global linking phase of the incremental static tier: compose
    per-class {!Summary} values into whole-program points-to, access,
    region and escape facts — the same facts the old monolithic solver
    computed, so {!Racepairs.generate} yields identical candidates.

    Always recomputed; every whole-program fact (dispatch, subtyping,
    write-once statics, escape closure) lives here, which is what
    keeps cached summaries valid across edits to other classes. *)

type t

val solve : ?open_world:bool -> Jir.Program.t -> Summary.cls list -> t
(** [solve prog sums] links one summary per class, in program class
    order.  Deterministic; no shared state. *)

val accs : t -> Dom.acc list
val regions : t -> Dom.region list
val esc : t -> Dom.esc
val shared : t -> Dom.Sites.t
val prog : t -> Jir.Program.t
val site_info : t -> Dom.site -> Dom.site_info
