(** Lock-discipline lint: static race candidates, unguarded writes to
    fields guarded elsewhere, dead sync regions, and a monitor-balance
    dataflow over compiled bytecode.  Output is sorted and
    deterministic (independent of [--jobs]). *)

type finding = {
  f_sev : Jir.Diag.severity;
  f_span : Jir.Diag.span;
  f_msg : string;
}

val compare_finding : finding -> finding -> int

val to_string : finding -> string
(** ["span: severity: message"]. *)

val run : ?file:string -> Analyze.t -> Jir.Code.unit_ -> finding list
(** All findings for one compilation unit, sorted by (span, severity,
    message).  [?file] prefixes every span. *)
