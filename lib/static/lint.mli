(** Lock-discipline lint: static race candidates, unguarded writes to
    fields guarded elsewhere, dead sync regions, and a monitor-balance
    dataflow over compiled bytecode.  Output is sorted and
    deterministic (independent of [--jobs]). *)

type finding = {
  f_sev : Jir.Diag.severity;
  f_span : Jir.Diag.span;
  f_msg : string;
}

val compare_finding : finding -> finding -> int

val to_string : finding -> string
(** ["span: severity: message"]. *)

val run : ?file:string -> Analyze.t -> Jir.Code.unit_ -> finding list
(** All findings for one compilation unit, sorted by (span, severity,
    message).  [?file] prefixes every span. *)

(** The rendered per-unit output of [narada lint]: findings then a
    one-line footer, plus the severity totals (for [--strict]). *)
type block = { bl_text : string; bl_errors : int; bl_warnings : int }

val render_block : label:string -> finding list -> block

val block :
  ?cache:Cache.t ->
  label:string ->
  source:string ->
  compile:(unit -> Jir.Code.unit_) ->
  unit ->
  block
(** Lint one unit.  With [?cache], the rendered block is cached keyed
    by (label, source bytes) — a warm re-lint of an unchanged unit
    skips parsing and analysis entirely — and class summaries are
    cached by content digest underneath, so an edited unit only
    re-summarizes its changed classes.  [compile] is only invoked on a
    block-cache miss and may raise {!Jir.Diag.Error}. *)
