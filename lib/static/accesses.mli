(** Collection of static field/array accesses with the locks
    *must*-held at each access and the sync regions enclosing it.

    Lock tracking is per-body and context-insensitive (an access in a
    callee is recorded with the callee's own locks only) —
    under-approximating held locks can only add racy pairs, which is
    the sound direction.  [<clinit>] bodies are skipped: they run
    before any detector attaches. *)

type t = { accs : Dom.acc list; regions : Dom.region list }

val collect : Pointsto.t -> t
(** Walks [Pointsto.meths] in order; access and region ids are dense
    and deterministic. *)
