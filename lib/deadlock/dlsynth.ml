(* Deadlock test synthesis: turn an ABBA lock-order pair into a
   two-thread test, instantiate it with objects collected from the seed
   test (cross-unifying the lock owners), and confirm the deadlock with
   a directed scheduler that delays *inner* acquisitions until every
   racy thread holds its outer lock. *)

type test = {
  dt_pair : Lockorder.pair;
  dt_seed_cls : Jir.Ast.id;
  dt_seed_meth : Jir.Ast.id;
}

let ( let* ) = Result.bind

let root_value (cap : Runtime.Interp.captured) (p : Narada_core.Sym.t) :
    (Runtime.Value.t, string) result =
  match p.Narada_core.Sym.root with
  | Narada_core.Sym.Recv -> (
    match cap.Runtime.Interp.cap_recv with
    | Some v -> Ok v
    | None -> Error "static method cannot own a receiver lock")
  | Narada_core.Sym.Arg j -> (
    match List.nth_opt cap.Runtime.Interp.cap_args (j - 1) with
    | Some v -> Ok v
    | None -> Error "missing argument")
  | Narada_core.Sym.Ret -> Error "return-rooted lock paths are not supported"

let set_root (cap : Runtime.Interp.captured) (p : Narada_core.Sym.t)
    (v : Runtime.Value.t) : Runtime.Interp.captured =
  match p.Narada_core.Sym.root with
  | Narada_core.Sym.Recv -> { cap with Runtime.Interp.cap_recv = Some v }
  | Narada_core.Sym.Arg j ->
    {
      cap with
      Runtime.Interp.cap_args =
        List.mapi
          (fun i x -> if i = j - 1 then v else x)
          cap.Runtime.Interp.cap_args;
    }
  | Narada_core.Sym.Ret -> cap

(* Follow the field part of a lock path from the root value. *)
let lock_value m cap (p : Narada_core.Sym.t) : (Runtime.Value.t, string) result =
  let* root = root_value cap p in
  match Runtime.Machine.deref_path m root p.Narada_core.Sym.fields with
  | Some v -> Ok v
  | None -> Error "lock path does not resolve"

let capture m ~(t : test) ~qname ~nth =
  match
    Runtime.Interp.run_until_call m ~cls:t.dt_seed_cls ~meth:t.dt_seed_meth
      ~target_qname:qname ~nth
  with
  | Some c ->
    Runtime.Machine.suspend m c.Runtime.Interp.cap_tid;
    Ok c
  | None -> Error (Printf.sprintf "seed never reaches %s" qname)

let spawn m (cap : Runtime.Interp.captured) ~meth :
    (Runtime.Value.tid, string) result =
  let cu = Runtime.Machine.unit_of m in
  match cap.Runtime.Interp.cap_recv with
  | None -> Error "static deadlock endpoints unsupported"
  | Some recv -> (
    match Runtime.Value.addr_of recv with
    | None -> Error "receiver is not an object"
    | Some a -> (
      match Runtime.Heap.class_of (Runtime.Machine.heap m) a with
      | None -> Error "receiver is an array"
      | Some cls -> (
        match Jir.Code.find_virtual cu cls meth with
        | Some cm ->
          Ok
            (Runtime.Machine.new_thread m ~client:true ~cm ~recv:(Some recv)
               ~args:cap.Runtime.Interp.cap_args ())
        | None -> Error ("cannot resolve " ^ meth))))

(* Instantiate: collect both endpoints, then rewire thread B's lock
   roots so that B's outer lock is A's inner and vice versa (the ABBA
   crossing).  Only root-level lock paths are rewired; deeper paths rely
   on the seed state already aliasing (documented limitation). *)
let instantiate ?(seed = Runtime.Machine.default_seed) (cu : Jir.Code.unit_) ~client_classes (t : test)
    : (Detect.Racefuzzer.instance, string) result =
  let m = Runtime.Machine.create ~client_classes ~seed cu in
  let ea = t.dt_pair.Lockorder.dl_a and eb = t.dt_pair.Lockorder.dl_b in
  let* cap_a =
    capture m ~t ~qname:ea.Lockorder.ed_qname ~nth:ea.Lockorder.ed_occurrence
  in
  let* cap_b =
    capture m ~t ~qname:eb.Lockorder.ed_qname ~nth:eb.Lockorder.ed_occurrence
  in
  (* cross-unify: B.outer := A.inner, B.inner := A.outer *)
  let* a_outer = lock_value m cap_a ea.Lockorder.ed_outer in
  let* a_inner = lock_value m cap_a ea.Lockorder.ed_inner in
  let cap_b =
    if eb.Lockorder.ed_outer.Narada_core.Sym.fields = [] then
      set_root cap_b eb.Lockorder.ed_outer a_inner
    else cap_b
  in
  let cap_b =
    if eb.Lockorder.ed_inner.Narada_core.Sym.fields = [] then
      set_root cap_b eb.Lockorder.ed_inner a_outer
    else cap_b
  in
  let* t1 = spawn m cap_a ~meth:ea.Lockorder.ed_meth in
  let* t2 = spawn m cap_b ~meth:eb.Lockorder.ed_meth in
  let roots =
    List.filter_map Fun.id
      [ cap_a.Runtime.Interp.cap_recv; cap_b.Runtime.Interp.cap_recv ]
    @ cap_a.Runtime.Interp.cap_args @ cap_b.Runtime.Interp.cap_args
  in
  Ok
    {
      Detect.Racefuzzer.ri_machine = m;
      ri_threads = [ t1; t2 ];
      ri_roots = roots;
    }

(* Directed deadlock scheduler: a thread about to re-enter a monitor
   while already holding one is postponed until every live racy thread
   is similarly poised (or blocked) — then released, forcing the ABBA
   interleaving if it exists. *)
let directed_deadlock_scheduler (racy : Runtime.Value.tid list) :
    Conc.Scheduler.t =
  Conc.Scheduler.of_fun ~name:"directed-deadlock" (fun m runnable ->
      let poised tid =
        match Runtime.Machine.peek m tid with
        | Some (_, _, Jir.Code.Ienter _) ->
          Runtime.Machine.held_locks m tid <> []
        | _ -> false
      in
      let racy_runnable = List.filter (fun t -> List.mem t racy) runnable in
      let unpoised = List.filter (fun t -> not (poised t)) racy_runnable in
      match unpoised with
      | t :: _ -> t (* advance whoever has not reached its inner acquire *)
      | [] -> (
        (* everyone poised: release in order — they will block on each
           other if the deadlock is real *)
        match racy_runnable with
        | t :: _ -> t
        | [] -> List.hd runnable))

type confirmation = {
  co_deadlocked : bool;
  co_threads : Runtime.Value.tid list; (* threads in the deadlock *)
  co_schedule : string; (* which scheduler confirmed *)
}

(* Confirm by directed scheduling, falling back to random schedules. *)
let confirm ?(seed = Runtime.Machine.default_seed) ?(random_tries = 10) (cu : Jir.Code.unit_)
    ~client_classes (t : test) : (confirmation, string) result =
  let try_sched name sched =
    match instantiate ~seed cu ~client_classes t with
    | Error e -> Error e
    | Ok inst -> (
      let r = Conc.Exec.run inst.Detect.Racefuzzer.ri_machine (sched inst) in
      match r.Conc.Exec.outcome with
      | Conc.Exec.Deadlock tids ->
        Ok (Some { co_deadlocked = true; co_threads = tids; co_schedule = name })
      | Conc.Exec.All_finished | Conc.Exec.Fuel_exhausted -> Ok None)
  in
  let* directed =
    try_sched "directed" (fun inst ->
        directed_deadlock_scheduler inst.Detect.Racefuzzer.ri_threads)
  in
  match directed with
  | Some c -> Ok c
  | None ->
    let rec randoms i =
      if i >= random_tries then
        Ok { co_deadlocked = false; co_threads = []; co_schedule = "none" }
      else
        let* r =
          try_sched
            (Printf.sprintf "random-%d" i)
            (fun _ -> Conc.Scheduler.random ~seed:(Int64.add seed (Int64.of_int (i * 37))))
        in
        match r with Some c -> Ok c | None -> randoms (i + 1)
    in
    randoms 0

(* End-to-end: analyze, synthesize one test per ABBA pair, confirm. *)
type result_row = {
  rr_pair : Lockorder.pair;
  rr_confirmed : confirmation option;
}

let run (cu : Jir.Code.unit_) ~client_classes ~seed_cls ~seed_meth :
    (result_row list, string) result =
  let* _edges, pairs = Lockorder.analyze cu ~client_classes ~seed_cls ~seed_meth in
  Ok
    (List.map
       (fun p ->
         let t = { dt_pair = p; dt_seed_cls = seed_cls; dt_seed_meth = seed_meth } in
         match confirm cu ~client_classes t with
         | Ok c -> { rr_pair = p; rr_confirmed = Some c }
         | Error _ -> { rr_pair = p; rr_confirmed = None })
       pairs)
