(* Narada's observability layer: monotonic spans, process-wide metric
   registries, and a JSONL exporter.  See obs.mli for the contract.

   Determinism discipline — every metric is classified at the recording
   call site:

   - *stable* metrics (counters, histograms, span call counts) may only
     record quantities that are a pure function of the inputs and seeds,
     never of the schedule or the clock.  The exporter emits them as
     `"kind": "stable"` lines, sorted, and the whole stable section is
     byte-identical across `--jobs` values and across runs.
   - *volatile* metrics (gauges, span durations) carry wall-clock and
     pool-scheduling facts.  They are emitted after the stable section
     and are exactly the lines a determinism check strips.

   Registries are mutex-protected and every combine operation is
   commutative (sum, min, max), so concurrent recording from Par
   domains merges to the same state regardless of worker schedule. *)

module Clock = struct
  external monotonic_ns : unit -> int64 = "narada_obs_monotonic_ns"

  let ticks = monotonic_ns

  let elapsed_ns ~since = Int64.sub (monotonic_ns ()) since

  let elapsed_s ~since = Int64.to_float (elapsed_ns ~since) /. 1e9

  (* Wall clock, for report timestamps ONLY — never subtract two wall
     readings to measure a duration. *)
  let wall_unix_ms () = Int64.of_float (Unix.gettimeofday () *. 1000.0)
end

module Metrics = struct
  type histogram = { h_count : int; h_sum : int; h_min : int; h_max : int }

  type mhist = {
    mutable mh_count : int;
    mutable mh_sum : int;
    mutable mh_min : int;
    mutable mh_max : int;
  }

  type gauge_kind = Gsum | Gmax

  type mgauge = { mutable mg_value : float; mg_kind : gauge_kind }

  type mspan = { mutable ms_calls : int; mutable ms_ns : int64 }

  type t = {
    mu : Mutex.t;
    counters : (string, int ref) Hashtbl.t;
    hists : (string, mhist) Hashtbl.t;
    gauges : (string, mgauge) Hashtbl.t;
    span_tbl : (string, mspan) Hashtbl.t;
  }

  let create () =
    {
      mu = Mutex.create ();
      counters = Hashtbl.create 32;
      hists = Hashtbl.create 32;
      gauges = Hashtbl.create 32;
      span_tbl = Hashtbl.create 32;
    }

  let global_registry = create ()

  let global () = global_registry

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let reset t =
    locked t (fun () ->
        Hashtbl.reset t.counters;
        Hashtbl.reset t.hists;
        Hashtbl.reset t.gauges;
        Hashtbl.reset t.span_tbl)

  let incr ?(n = 1) t name =
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some r -> r := !r + n
        | None -> Hashtbl.replace t.counters name (ref n))

  let counter_value t name =
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

  let observe t name v =
    locked t (fun () ->
        match Hashtbl.find_opt t.hists name with
        | Some h ->
          h.mh_count <- h.mh_count + 1;
          h.mh_sum <- h.mh_sum + v;
          if v < h.mh_min then h.mh_min <- v;
          if v > h.mh_max then h.mh_max <- v
        | None ->
          Hashtbl.replace t.hists name
            { mh_count = 1; mh_sum = v; mh_min = v; mh_max = v })

  let gauge_update t name ~kind v =
    locked t (fun () ->
        match Hashtbl.find_opt t.gauges name with
        | Some g -> (
          match g.mg_kind with
          | Gsum -> g.mg_value <- g.mg_value +. v
          | Gmax -> if v > g.mg_value then g.mg_value <- v)
        | None -> Hashtbl.replace t.gauges name { mg_value = v; mg_kind = kind })

  let gauge_add t name v = gauge_update t name ~kind:Gsum v

  let gauge_max t name v = gauge_update t name ~kind:Gmax v

  (* Called by Span.exit (and tests). *)
  let record_span t path ~ns =
    locked t (fun () ->
        match Hashtbl.find_opt t.span_tbl path with
        | Some s ->
          s.ms_calls <- s.ms_calls + 1;
          s.ms_ns <- Int64.add s.ms_ns ns
        | None -> Hashtbl.replace t.span_tbl path { ms_calls = 1; ms_ns = ns })

  let sorted_fold tbl f =
    let l = Hashtbl.fold (fun k v acc -> f k v :: acc) tbl [] in
    List.sort (fun (a, _) (b, _) -> String.compare a b) l

  let counters t =
    locked t (fun () -> sorted_fold t.counters (fun k r -> (k, !r)))

  let histograms t =
    locked t (fun () ->
        sorted_fold t.hists (fun k h ->
            ( k,
              {
                h_count = h.mh_count;
                h_sum = h.mh_sum;
                h_min = h.mh_min;
                h_max = h.mh_max;
              } )))

  let gauges t = locked t (fun () -> sorted_fold t.gauges (fun k g -> (k, g.mg_value)))

  let spans t =
    locked t (fun () -> sorted_fold t.span_tbl (fun k s -> (k, (s.ms_calls, s.ms_ns))))
    |> List.map (fun (k, (c, ns)) -> (k, c, ns))

  let span_calls t path =
    locked t (fun () ->
        match Hashtbl.find_opt t.span_tbl path with
        | Some s -> s.ms_calls
        | None -> 0)

  let span_ns t path =
    locked t (fun () ->
        match Hashtbl.find_opt t.span_tbl path with Some s -> s.ms_ns | None -> 0L)

  let merge_histogram (a : histogram) (b : histogram) : histogram =
    if a.h_count = 0 then b
    else if b.h_count = 0 then a
    else
      {
        h_count = a.h_count + b.h_count;
        h_sum = a.h_sum + b.h_sum;
        h_min = min a.h_min b.h_min;
        h_max = max a.h_max b.h_max;
      }

  (* Deterministic cross-registry merge: every combine is commutative
     and associative, so any merge tree over the same leaf registries
     yields the same result. *)
  let merge_into ~dst src =
    List.iter (fun (k, v) -> incr ~n:v dst k) (counters src);
    List.iter
      (fun (k, (h : histogram)) ->
        locked dst (fun () ->
            match Hashtbl.find_opt dst.hists k with
            | Some d ->
              d.mh_count <- d.mh_count + h.h_count;
              d.mh_sum <- d.mh_sum + h.h_sum;
              if h.h_min < d.mh_min then d.mh_min <- h.h_min;
              if h.h_max > d.mh_max then d.mh_max <- h.h_max
            | None ->
              Hashtbl.replace dst.hists k
                {
                  mh_count = h.h_count;
                  mh_sum = h.h_sum;
                  mh_min = h.h_min;
                  mh_max = h.h_max;
                }))
      (List.map (fun (k, h) -> (k, h)) (histograms src));
    List.iter
      (fun (k, v) ->
        let kind =
          locked src (fun () ->
              match Hashtbl.find_opt src.gauges k with
              | Some g -> g.mg_kind
              | None -> Gsum)
        in
        gauge_update ~kind dst k v)
      (gauges src);
    List.iter
      (fun (path, calls, ns) ->
        locked dst (fun () ->
            match Hashtbl.find_opt dst.span_tbl path with
            | Some s ->
              s.ms_calls <- s.ms_calls + calls;
              s.ms_ns <- Int64.add s.ms_ns ns
            | None -> Hashtbl.replace dst.span_tbl path { ms_calls = calls; ms_ns = ns }))
      (spans src)
end

module Span = struct
  type span = {
    sp_path : string;
    sp_start : int64;
    sp_reg : Metrics.t;
    mutable sp_open : bool;
  }

  (* Per-domain span stack: spans nest within one domain and Par worker
     domains start from an empty stack, so instrumentation that may run
     under a pool uses [~root:true] to get job-count-independent paths. *)
  let stack : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let current_path () =
    match !(Domain.DLS.get stack) with [] -> "" | s :: _ -> s.sp_path

  let enter ?registry ?(root = false) name =
    let reg = match registry with Some r -> r | None -> Metrics.global () in
    let st = Domain.DLS.get stack in
    let path =
      match !st with
      | parent :: _ when not root -> parent.sp_path ^ "/" ^ name
      | _ -> name
    in
    let sp = { sp_path = path; sp_start = Clock.ticks (); sp_reg = reg; sp_open = true } in
    st := sp :: !st;
    sp

  let exit sp =
    if sp.sp_open then begin
      sp.sp_open <- false;
      let ns = Clock.elapsed_ns ~since:sp.sp_start in
      let st = Domain.DLS.get stack in
      (* Tolerate a missed inner exit: unwind to this span. *)
      let rec unwind = function
        | s :: rest when s == sp -> rest
        | _ :: rest -> unwind rest
        | [] -> []
      in
      st := unwind !st;
      Metrics.record_span sp.sp_reg sp.sp_path ~ns
    end

  let with_ ?registry ?root name f =
    let sp = enter ?registry ?root name in
    Fun.protect ~finally:(fun () -> exit sp) f

  let path sp = sp.sp_path

  (* Per-span counters and histograms: recorded under "<path>#<name>",
     which keeps them adjacent to the span in sorted exports. *)
  let count sp name n = Metrics.incr ~n sp.sp_reg (sp.sp_path ^ "#" ^ name)

  let observe sp name v = Metrics.observe sp.sp_reg (sp.sp_path ^ "#" ^ name) v
end

module Export = struct
  let schema = "narada.metrics/1"

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_str s = Printf.sprintf "\"%s\"" (escape s)

  (* A gauge value is wall-clock-ish; 6 fractional digits is plenty and
     keeps lines short. *)
  let json_float v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
    else Printf.sprintf "%.6f" v

  let obj fields =
    "{" ^ String.concat ", " (List.map (fun (k, v) -> json_str k ^ ": " ^ v) fields) ^ "}"

  let meta_line ?(fields = []) () =
    obj
      ([
         ("kind", json_str "meta");
         ("schema", json_str schema);
         ("unix_ms", Int64.to_string (Clock.wall_unix_ms ()));
       ]
      @ fields)

  let counter_line ~name ~value =
    obj
      [
        ("kind", json_str "stable");
        ("type", json_str "counter");
        ("name", json_str name);
        ("value", string_of_int value);
      ]

  let histogram_line ~name (h : Metrics.histogram) =
    obj
      [
        ("kind", json_str "stable");
        ("type", json_str "histogram");
        ("name", json_str name);
        ("count", string_of_int h.Metrics.h_count);
        ("sum", string_of_int h.Metrics.h_sum);
        ("min", string_of_int h.Metrics.h_min);
        ("max", string_of_int h.Metrics.h_max);
      ]

  let span_line ~path ~calls =
    obj
      [
        ("kind", json_str "stable");
        ("type", json_str "span");
        ("path", json_str path);
        ("calls", string_of_int calls);
      ]

  let span_ns_line ~path ~ns =
    obj
      [
        ("kind", json_str "volatile");
        ("type", json_str "span_ns");
        ("path", json_str path);
        ("ns", Int64.to_string ns);
      ]

  let gauge_line ?(fields = []) ~name ~value () =
    obj
      ([
         ("kind", json_str "volatile");
         ("type", json_str "gauge");
         ("name", json_str name);
         ("value", json_float value);
       ]
      @ fields)

  (* The export order is part of the schema: one meta line, then the
     stable section (counters, histograms, span call counts — each
     sorted by name), then the volatile section (span durations,
     gauges).  A determinism check keeps only the stable lines. *)
  let to_lines ?(meta = []) (t : Metrics.t) : string list =
    let counters =
      List.map (fun (name, value) -> counter_line ~name ~value) (Metrics.counters t)
    in
    let hists =
      List.map (fun (name, h) -> histogram_line ~name h) (Metrics.histograms t)
    in
    let spans = Metrics.spans t in
    let span_calls = List.map (fun (path, calls, _) -> span_line ~path ~calls) spans in
    let span_ns = List.map (fun (path, _, ns) -> span_ns_line ~path ~ns) spans in
    let gauges =
      List.map (fun (name, value) -> gauge_line ~name ~value ()) (Metrics.gauges t)
    in
    (meta_line ~fields:meta () :: counters) @ hists @ span_calls @ span_ns @ gauges

  let stable_prefix = "{\"kind\": \"stable\""

  let is_stable_line l =
    String.length l >= String.length stable_prefix
    && String.equal (String.sub l 0 (String.length stable_prefix)) stable_prefix

  let stable_lines t = List.filter is_stable_line (to_lines t)

  let write_jsonl ~path ?meta t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          (to_lines ?meta t))
end
