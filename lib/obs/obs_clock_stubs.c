/* Monotonic clock for Obs.Clock.

   The OCaml stdlib only exposes wall-clock time (Unix.gettimeofday),
   which can jump backwards under NTP adjustment and produced negative
   "durations" in the timing code this library replaces.  CLOCK_MONOTONIC
   never goes backwards; resolution is nanoseconds. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value narada_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}
