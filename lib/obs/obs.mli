(** Observability: monotonic spans, process-wide metric registries, and
    a JSONL exporter.

    Every metric is classified at the recording call site:

    - {e stable} metrics (counters, histograms, span call counts) may
      only record quantities that are pure functions of the inputs and
      seeds.  The exported stable section is byte-identical across
      [--jobs] values and across runs.
    - {e volatile} metrics (gauges, span durations) carry wall-clock
      and pool-scheduling facts; a determinism check strips them.

    Registries are thread-safe and every combine is commutative, so
    recording from [Par] worker domains merges deterministically. *)

module Clock : sig
  val ticks : unit -> int64
  (** Monotonic clock, nanoseconds from an arbitrary origin.  Never
      goes backwards; the only legal source for durations. *)

  val elapsed_ns : since:int64 -> int64
  val elapsed_s : since:int64 -> float

  val wall_unix_ms : unit -> int64
  (** Wall clock for report {e timestamps} only — never subtract two
      wall readings to measure a duration. *)
end

module Metrics : sig
  type t

  type histogram = { h_count : int; h_sum : int; h_min : int; h_max : int }

  val create : unit -> t

  val global : unit -> t
  (** The process-wide registry that all built-in instrumentation
      records into. *)

  val reset : t -> unit

  val incr : ?n:int -> t -> string -> unit
  val counter_value : t -> string -> int

  val observe : t -> string -> int -> unit
  (** Record one histogram sample (count/sum/min/max are kept). *)

  val gauge_add : t -> string -> float -> unit
  (** Volatile gauge combined by summation. *)

  val gauge_max : t -> string -> float -> unit
  (** Volatile gauge combined by maximum (high-water marks). *)

  val record_span : t -> string -> ns:int64 -> unit
  (** Low-level span recording (normally via {!Span}). *)

  val counters : t -> (string * int) list
  (** Sorted by name; likewise below. *)

  val histograms : t -> (string * histogram) list
  val gauges : t -> (string * float) list

  val spans : t -> (string * int * int64) list
  (** [(path, calls, total_ns)], sorted by path. *)

  val span_calls : t -> string -> int
  val span_ns : t -> string -> int64

  val merge_histogram : histogram -> histogram -> histogram
  (** Commutative and associative; the empty histogram
      ([h_count = 0]) is the identity. *)

  val merge_into : dst:t -> t -> unit
  (** Merge [src] into [dst].  All combines are commutative and
      associative, so any merge tree over the same leaves agrees. *)
end

module Span : sig
  type span

  val enter : ?registry:Metrics.t -> ?root:bool -> string -> span
  (** Start a span.  The path nests under the current domain's
      innermost open span ([a] inside [b] records as ["b/a"]) unless
      [~root:true], which anchors the path at the top level —
      instrumentation that may run on a [Par] worker uses [~root] so
      paths do not depend on the job count. *)

  val exit : span -> unit
  (** Stop the span and record one call plus its monotonic duration
      into the registry.  Idempotent. *)

  val with_ : ?registry:Metrics.t -> ?root:bool -> string -> (unit -> 'a) -> 'a

  val path : span -> string
  val current_path : unit -> string

  val count : span -> string -> int -> unit
  (** Per-span counter, recorded as ["<path>#<name>"]. *)

  val observe : span -> string -> int -> unit
  (** Per-span histogram sample, recorded as ["<path>#<name>"]. *)
end

module Export : sig
  val schema : string

  val to_lines : ?meta:(string * string) list -> Metrics.t -> string list
  (** JSONL records: one meta line (schema + wall-clock timestamp +
      caller fields, values pre-rendered as JSON), then the stable
      section (counters, histograms, span call counts; sorted), then
      the volatile section (span durations, gauges). *)

  val write_jsonl : path:string -> ?meta:(string * string) list -> Metrics.t -> unit

  val is_stable_line : string -> bool
  val stable_lines : Metrics.t -> string list

  val meta_line : ?fields:(string * string) list -> unit -> string
  (** Schema-shared line constructors for artifacts (BENCH files) that
      are not registry dumps. *)

  val counter_line : name:string -> value:int -> string

  val gauge_line :
    ?fields:(string * string) list -> name:string -> value:float -> unit -> string

  val json_str : string -> string
  val json_float : float -> string
end
